#include "serve/session_supervisor.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "core/oracle.h"
#include "core/resilient_oracle.h"
#include "core/strategy_factory.h"
#include "fusion/fusion_factory.h"
#include "obs/metrics.h"
#include "serve/stall_oracle.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/timer.h"

namespace veritas {

namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// Best-effort removal of a terminal session's durable artifacts; a leftover
// file is re-examined (and re-deleted) by the next recovery sweep, so
// failures here are not fatal.
void RemoveIfPresent(const std::string& path) { ::unlink(path.c_str()); }

void RemoveCheckpointChain(const std::string& ckpt) {
  RemoveIfPresent(ckpt);
  RemoveIfPresent(ckpt + ".1");
  RemoveIfPresent(ckpt + ".2");
}

// mkdir -p: creates every missing component of `dir`.
Status MakeDirectories(const std::string& dir) {
  std::string partial;
  partial.reserve(dir.size());
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') {
      partial.push_back(dir[i]);
      continue;
    }
    if (!partial.empty() &&
        ::mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST) {
      return Status::IoError("cannot create sessions directory " + partial +
                             ": " + std::strerror(errno));
    }
    if (i < dir.size()) partial.push_back('/');
  }
  return Status::OK();
}

}  // namespace

const char* SessionOutcomeName(SessionOutcome outcome) {
  switch (outcome) {
    case SessionOutcome::kCompleted:
      return "completed";
    case SessionOutcome::kEvicted:
      return "evicted";
    case SessionOutcome::kCancelled:
      return "cancelled";
    case SessionOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

SessionSupervisor::SessionSupervisor(const Database& db,
                                     const GroundTruth& truth,
                                     SupervisorOptions options)
    : db_(db), truth_(truth), options_(std::move(options)) {}

SessionSupervisor::~SessionSupervisor() { Shutdown(); }

Status SessionSupervisor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) {
    return Status::FailedPrecondition("supervisor already started");
  }
  if (options_.sessions_dir.empty()) {
    return Status::InvalidArgument(
        "SupervisorOptions::sessions_dir is required");
  }
  VERITAS_RETURN_IF_ERROR(MakeDirectories(options_.sessions_dir));
  const std::size_t workers =
      options_.max_concurrent_sessions > 0 ? options_.max_concurrent_sessions
                                           : 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back(&SessionSupervisor::WorkerLoop, this);
  }
  watchdog_ = std::thread(&SessionSupervisor::WatchdogLoop, this);
  started_ = true;
  return Status::OK();
}

Status SessionSupervisor::Submit(SessionSpec spec) {
  auto& reg = MetricsRegistry::Global();
  static Counter* submitted = reg.GetCounter("supervisor.submitted");
  static Counter* admitted = reg.GetCounter("supervisor.admitted");
  static Counter* shed = reg.GetCounter("supervisor.shed");
  submitted->Add(1);
  const std::string why = ValidateSessionId(spec.id);
  if (!why.empty()) return Status::InvalidArgument(why);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) {
      return Status::FailedPrecondition(
          "Start() the supervisor before Submit()");
    }
    if (stopping_) {
      return Status::FailedPrecondition("supervisor is shutting down");
    }
    if (draining_) {
      // Unavailable, not FailedPrecondition: the work is retryable against
      // the replacement process once this one finishes draining.
      return Status::Unavailable("supervisor is draining; session \"" +
                                 spec.id + "\" not admitted");
    }
    if (active_ids_.count(spec.id) != 0) {
      return Status::InvalidArgument("session \"" + spec.id +
                                     "\" is already queued or running");
    }
    if (queue_.size() + admitting_ >= options_.max_queue_depth) {
      shed->Add(1);
      std::ostringstream msg;
      msg << "admission queue full (" << (queue_.size() + admitting_)
          << " waiting, limit " << options_.max_queue_depth << "); session \""
          << spec.id << "\" shed";
      return Status::ResourceExhausted(msg.str());
    }
    active_ids_.insert(spec.id);
    ++admitting_;
  }
  // The durable manifest (fsync) is written outside mu_; the id + admitting_
  // reservation above keeps the slot accounted meanwhile.
  const Status saved = SaveSessionManifest(
      spec, SessionManifestPath(options_.sessions_dir, spec.id));
  std::lock_guard<std::mutex> lock(mu_);
  --admitting_;
  if (!saved.ok()) {
    active_ids_.erase(spec.id);
    if (queue_.empty() && running_.empty() && admitting_ == 0) {
      idle_cv_.notify_all();
    }
    return saved;
  }
  Pending item;
  item.spec = std::move(spec);
  item.enqueued = std::chrono::steady_clock::now();
  queue_.push_back(std::move(item));
  admitted->Add(1);
  work_cv_.notify_one();
  return Status::OK();
}

std::size_t SessionSupervisor::RecoverSessions() {
  auto& reg = MetricsRegistry::Global();
  static Counter* recovered_counter = reg.GetCounter("supervisor.recovered");
  static Counter* abandoned_counter =
      reg.GetCounter("supervisor.recovery_abandoned");
  static Counter* orphan_tmp_counter =
      reg.GetCounter("supervisor.orphan_tmp_removed");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return 0;
  }
  // A SIGKILLed predecessor can strand `*.tmp.*` files mid-checkpoint;
  // reclaim them here so crash-restart cycles never accumulate litter.
  orphan_tmp_counter->Add(RemoveOrphanTempFiles(options_.sessions_dir));
  auto ids = ListSessionManifests(options_.sessions_dir);
  if (!ids.ok()) return 0;
  std::size_t recovered = 0;
  for (const std::string& id : *ids) {
    const std::string manifest_path =
        SessionManifestPath(options_.sessions_dir, id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (active_ids_.count(id) != 0) continue;  // Still live, not orphaned.
    }
    auto spec = LoadSessionManifest(manifest_path);
    if (!spec.ok()) {
      // Unreadable manifest: the spec cannot be reconstructed, so the
      // session cannot be re-admitted. Abandon it (checkpoints are kept for
      // forensics) rather than rescanning it forever.
      RemoveIfPresent(manifest_path);
      abandoned_counter->Add(1);
      continue;
    }
    if (spec->recovery_attempts >= options_.max_recovery_attempts) {
      RemoveIfPresent(manifest_path);
      abandoned_counter->Add(1);
      continue;
    }
    spec->recovery_attempts += 1;
    // Persist the incremented attempt count *before* re-running: a crash
    // during the re-run must see the attempt as spent, or a session that
    // reliably crashes the process would recovery-loop forever.
    if (!SaveSessionManifest(*spec, manifest_path).ok()) continue;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_ || active_ids_.count(id) != 0) continue;
      active_ids_.insert(id);
      Pending item;
      item.spec = std::move(*spec);
      item.enqueued = std::chrono::steady_clock::now();
      item.recovered = true;
      // Recovered sessions bypass the shed check: they hold an admission
      // already (their manifest survived), and the sweep runs at startup
      // when the queue is empty.
      queue_.push_back(std::move(item));
      work_cv_.notify_one();
    }
    recovered_counter->Add(1);
    ++recovered;
  }
  return recovered;
}

void SessionSupervisor::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return queue_.empty() && running_.empty() && admitting_ == 0;
  });
}

void SessionSupervisor::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) return;
  draining_ = true;
  // Graceful stop only: every running session checkpoints at its next round
  // boundary and reports kCancelled with its manifest intact, so the next
  // process's recovery sweep resumes it bit-exactly.
  for (auto& entry : running_) entry.second->token.RequestStop();
  work_cv_.notify_all();
}

void SessionSupervisor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    work_cv_.notify_all();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    watchdog_stop_ = true;
    watchdog_cv_.notify_all();
  }
  if (watchdog_.joinable()) watchdog_.join();
}

std::size_t SessionSupervisor::running_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_.size();
}

std::size_t SessionSupervisor::queued_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool SessionSupervisor::IsActive(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_ids_.count(id) != 0;
}

bool SessionSupervisor::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

std::vector<SessionReport> SessionSupervisor::Reports() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_;
}

bool SessionSupervisor::FindReport(const std::string& id,
                                   SessionReport* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = reports_.rbegin(); it != reports_.rend(); ++it) {
    if (it->id == id) {
      *out = *it;
      return true;
    }
  }
  return false;
}

void SessionSupervisor::WorkerLoop() {
  auto& reg = MetricsRegistry::Global();
  static Counter* completed = reg.GetCounter("supervisor.completed");
  static Counter* evicted = reg.GetCounter("supervisor.evicted");
  static Counter* cancelled = reg.GetCounter("supervisor.cancelled");
  static Counter* failed = reg.GetCounter("supervisor.failed");
  static Histogram* queue_wait =
      reg.GetHistogram("supervisor.queue_wait_seconds");
  static Histogram* session_seconds =
      reg.GetHistogram("supervisor.session_seconds");
  for (;;) {
    Pending item;
    Running* run = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stopping_ || draining_ || !queue_.empty();
      });
      // Draining: leave queued admissions untouched — their manifests are
      // durable and the next process's recovery sweep re-admits them.
      if (draining_) return;
      if (queue_.empty()) return;  // stopping_ set and queue drained.
      item = std::move(queue_.front());
      queue_.pop_front();
      auto owned = std::make_unique<Running>();
      const long deadline_ms = item.spec.deadline_ms > 0
                                   ? item.spec.deadline_ms
                                   : options_.default_deadline_ms;
      owned->deadline = deadline_ms > 0 ? Deadline::AfterMillis(deadline_ms)
                                        : Deadline::Infinite();
      run = owned.get();
      running_[item.spec.id] = std::move(owned);
    }
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      item.enqueued)
            .count();
    SessionReport report = RunOne(item, run);
    report.queue_wait_seconds = waited;
    queue_wait->Observe(waited);
    session_seconds->Observe(report.run_seconds);
    switch (report.outcome) {
      case SessionOutcome::kCompleted:
        completed->Add(1);
        break;
      case SessionOutcome::kEvicted:
        evicted->Add(1);
        // Per-tenant eviction counter (registry lookup, not static: the id
        // differs per event). Lets an operator see *which* session is being
        // squeezed, not just that someone is.
        reg.GetCounter("supervisor.evicted." + report.id)->Add(1);
        break;
      case SessionOutcome::kCancelled:
        cancelled->Add(1);
        break;
      case SessionOutcome::kFailed:
        failed->Add(1);
        break;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      running_.erase(report.id);
      active_ids_.erase(report.id);
      reports_.push_back(std::move(report));
      if (queue_.empty() && running_.empty() && admitting_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

void SessionSupervisor::WatchdogLoop() {
  auto& reg = MetricsRegistry::Global();
  static Counter* graceful = reg.GetCounter("supervisor.watchdog_graceful");
  static Counter* hard = reg.GetCounter("supervisor.watchdog_hard");
  std::unique_lock<std::mutex> lock(mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, options_.watchdog_poll);
    if (watchdog_stop_) break;
    const auto now = std::chrono::steady_clock::now();
    for (auto& entry : running_) {
      Running& run = *entry.second;
      if (run.escalation >= 2) continue;
      if (run.escalation == 1) {
        // Graceful was sent; a session stuck inside a round (hung oracle,
        // diverging solver) cannot observe it — escalate to the hard stop,
        // which inner loops and StallOracle-style transports do poll.
        if (now - run.escalated_at >= options_.watchdog_hard_grace) {
          run.token.RequestHardStop();
          run.escalation = 2;
          hard->Add(1);
          reg.GetCounter("supervisor.watchdog_hard." + entry.first)->Add(1);
        }
        continue;
      }
      if (!run.deadline.has_deadline() || !run.deadline.expired()) continue;
      if (!run.expired_seen) {
        // First observation past the deadline: start the grace clock; the
        // session's own round-boundary check normally wins this race.
        run.expired_seen = true;
        run.expired_seen_at = now;
        continue;
      }
      if (now - run.expired_seen_at >= options_.watchdog_grace) {
        run.token.RequestStop();
        run.escalation = 1;
        run.escalated_at = now;
        graceful->Add(1);
        reg.GetCounter("supervisor.watchdog_graceful." + entry.first)->Add(1);
      }
    }
  }
}

SessionReport SessionSupervisor::RunOne(const Pending& item, Running* run) {
  const SessionSpec& spec = item.spec;
  SessionReport report;
  report.id = spec.id;
  report.recovered = item.recovered;
  Timer run_timer;
  const auto fail = [&](const Status& status) {
    report.outcome = SessionOutcome::kFailed;
    report.status = status;
    report.run_seconds = run_timer.ElapsedSeconds();
    RemoveIfPresent(SessionManifestPath(options_.sessions_dir, spec.id));
    return report;
  };

  auto model = MakeFusionModel(spec.model);
  if (!model.ok()) return fail(model.status());
  // Cap the session's lookahead threads so workers x threads stays within
  // the host budget: each of the max_concurrent_sessions workers may run a
  // session concurrently, so every session gets an equal share.
  std::size_t total_threads = options_.max_total_threads;
  if (total_threads == 0) {
    total_threads = std::thread::hardware_concurrency();
    if (total_threads == 0) total_threads = 1;
  }
  const std::size_t workers =
      options_.max_concurrent_sessions > 0 ? options_.max_concurrent_sessions
                                           : 1;
  const std::size_t share = std::max<std::size_t>(1, total_threads / workers);
  const std::size_t effective_threads =
      std::max<std::size_t>(1, std::min(spec.threads, share));
  auto strategy = MakeStrategy(spec.strategy, effective_threads);
  if (!strategy.ok()) return fail(strategy.status());
  auto base_oracle = MakeOracle(spec.oracle);
  if (!base_oracle.ok()) return fail(base_oracle.status());

  // Oracle chain, innermost out: base -> flaky faults -> stalled transport
  // -> retries. The stall sits outside the fault injector so a hang session
  // really hangs (injected faults cannot pre-empt it), and inside the retry
  // layer so retried calls pay the transport cost again.
  FeedbackOracle* tip = base_oracle->get();
  std::unique_ptr<FlakyOracle> flaky;
  if (!spec.flaky_plan.empty()) {
    auto plan = ParseFaultPlan(spec.flaky_plan);
    if (!plan.ok()) return fail(plan.status());
    flaky = std::make_unique<FlakyOracle>(tip, *plan, spec.seed);
    tip = flaky.get();
  }
  std::unique_ptr<StallOracle> stall;
  if (spec.stall_seconds > 0.0) {
    stall = std::make_unique<StallOracle>(tip, &run->token,
                                          spec.stall_seconds);
    tip = stall.get();
  }
  std::unique_ptr<RetryingOracle> retrying;
  if (spec.retries > 0) {
    RetryPolicy policy;
    policy.max_attempts = spec.retries + 1;
    policy.session_deadline = run->deadline;
    policy.cancel = &run->token;
    retrying = std::make_unique<RetryingOracle>(tip, policy);
    tip = retrying.get();
  }

  SessionOptions session_options;
  session_options.fusion.use_delta_fusion = spec.use_delta_fusion;
  session_options.max_validations = spec.max_validations;
  session_options.batch_size = spec.batch_size;
  session_options.checkpoint_path =
      SessionCheckpointPath(options_.sessions_dir, spec.id);
  session_options.resume_path = session_options.checkpoint_path;
  session_options.checkpoint_every_rounds = 1;
  session_options.cancel = &run->token;
  session_options.deadline = run->deadline;
  session_options.budget =
      spec.budget.limited() ? spec.budget : options_.default_budget;
  session_options.metrics_label = spec.id;
  report.resumed = FileExists(session_options.resume_path);

  Rng rng(spec.seed);
  FeedbackSession session(db_, **model, strategy->get(), tip, truth_,
                          session_options, &rng);
  auto trace = session.Run();
  report.run_seconds = run_timer.ElapsedSeconds();
  report.status = trace.status();

  if (trace.ok()) {
    report.outcome = SessionOutcome::kCompleted;
    report.rounds = trace->steps.size();
    report.num_validated =
        trace->steps.empty() ? 0 : trace->steps.back().num_validated;
    if (options_.keep_traces) report.trace = std::move(*trace);
    // Terminal success: nothing left to recover or resume.
    RemoveIfPresent(SessionManifestPath(options_.sessions_dir, spec.id));
    RemoveCheckpointChain(session_options.checkpoint_path);
    return report;
  }
  switch (trace.status().code()) {
    case StatusCode::kResourceExhausted:
      // Budget eviction: checkpointed by the session; manifest stays so the
      // recovery sweep (or an operator) can resume it.
      report.outcome = SessionOutcome::kEvicted;
      return report;
    case StatusCode::kDeadlineExceeded:
      // Deadline / watchdog / operator stop; also checkpointed + resumable.
      report.outcome = SessionOutcome::kCancelled;
      return report;
    default:
      // Hard error: keep the checkpoint for forensics but drop the manifest
      // so recovery does not re-run a deterministic failure.
      return fail(trace.status());
  }
}

}  // namespace veritas
