// SessionSupervisor: the overload-safe multi-session layer that promotes the
// library from one-shot CLI runs toward a long-lived fusion service (ROADMAP
// "Long-lived multi-session fusion service"). Many concurrent
// FeedbackSessions run over one shared immutable Database/GroundTruth
// snapshot; the supervisor keeps the service up under overload, stuck
// oracles and process crashes with four cooperating mechanisms:
//
//   1. Admission control — a bounded queue in front of a fixed worker pool.
//      When max_queue_depth is reached, Submit() rejects with a typed
//      Status::ResourceExhausted instead of letting latency degrade for
//      every admitted session (load shedding, never unbounded buffering).
//   2. Per-session resource budgets — SessionOptions::budget (approximate
//      bytes + per-run round quota, util/resource_budget). A breach evicts
//      the session gracefully to its durable checkpoint; the admission slot
//      is freed and the session stays resumable.
//   3. Watchdog — a background thread that detects sessions stuck past
//      their Deadline (e.g. a hung oracle that never returns control to the
//      round loop) and escalates through the two-severity
//      CancellationToken: graceful first, hard after a further grace. Every
//      escalation is recorded in obs metrics.
//   4. Crash recovery — admission writes a durable manifest
//      (serve/session_manifest) next to the session's checkpoint chain;
//      RecoverSessions() re-admits every session whose manifest survived a
//      crash/eviction, resuming bit-exactly from the newest verifying
//      checkpoint generation. Repeatedly failing sessions are abandoned
//      after max_recovery_attempts so recovery cannot crash-loop.
//
// Threading: Submit/Drain/Shutdown/Reports are safe from any thread.
// Sessions share only immutable state (the snapshot) and the thread-safe
// obs registry; every mutable object (strategy, oracle chain, Rng, trace)
// is per-session.
#ifndef VERITAS_SERVE_SESSION_SUPERVISOR_H_
#define VERITAS_SERVE_SESSION_SUPERVISOR_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "model/database.h"
#include "model/ground_truth.h"
#include "serve/session_manifest.h"
#include "util/cancellation.h"
#include "util/resource_budget.h"
#include "util/result.h"

namespace veritas {

/// Supervisor knobs.
struct SupervisorOptions {
  /// Worker threads = concurrently running sessions.
  std::size_t max_concurrent_sessions = 4;
  /// Admissions waiting beyond the running ones; Submit sheds past this.
  std::size_t max_queue_depth = 16;
  /// Directory for manifests + checkpoint chains (required; created if
  /// missing). One supervisor per directory.
  std::string sessions_dir;
  /// Deadline for specs that do not set one (<= 0 = none).
  long default_deadline_ms = 0;
  /// Budget for specs that do not set one (unlimited = none).
  ResourceBudget default_budget;
  /// Watchdog scan period.
  std::chrono::milliseconds watchdog_poll{10};
  /// Grace past a session's deadline before the graceful escalation — the
  /// session's own round-boundary check should normally win this race; the
  /// watchdog only fires for sessions stuck inside a round.
  std::chrono::milliseconds watchdog_grace{50};
  /// Grace after the graceful escalation before the hard stop.
  std::chrono::milliseconds watchdog_hard_grace{100};
  /// Recovery re-admissions per session before it is abandoned (manifest
  /// removed, checkpoint kept for forensics).
  std::size_t max_recovery_attempts = 3;
  /// Ceiling on total lookahead-scan threads across the worker pool. A
  /// session asking for SessionSpec::threads gets at most
  /// max_total_threads / max_concurrent_sessions (floor 1), so a full fleet
  /// cannot oversubscribe the host. 0 = hardware concurrency.
  std::size_t max_total_threads = 0;
  /// Keep each session's full SessionTrace in its report (tests, small
  /// fleets). Off by default: a stress run would retain every fleet
  /// member's posteriors.
  bool keep_traces = false;
};

/// Terminal state of one admission.
enum class SessionOutcome {
  kCompleted = 0,  ///< Ran to its validation budget; artifacts cleaned up.
  kEvicted,        ///< Resource budget breach; checkpointed + recoverable.
  kCancelled,      ///< Deadline/watchdog/operator stop; recoverable.
  kFailed,         ///< Hard error; manifest removed (no recovery loop).
};
const char* SessionOutcomeName(SessionOutcome outcome);

/// What happened to one admission (one Submit or one recovery re-admission;
/// a session evicted and later recovered produces several reports).
struct SessionReport {
  std::string id;
  SessionOutcome outcome = SessionOutcome::kFailed;
  Status status;             ///< The session's final status verbatim.
  bool resumed = false;      ///< Started from an existing checkpoint.
  bool recovered = false;    ///< Admitted by the recovery sweep.
  std::size_t num_validated = 0;  ///< Cumulative, including resumed rounds.
  std::size_t rounds = 0;         ///< Recorded steps at the end of the run.
  double queue_wait_seconds = 0.0;
  double run_seconds = 0.0;
  /// Full trace (final fusion included) when SupervisorOptions::keep_traces.
  SessionTrace trace;
};

/// Owns the worker pool, watchdog and per-admission lifecycle over one
/// shared snapshot. The snapshot must outlive the supervisor.
class SessionSupervisor {
 public:
  SessionSupervisor(const Database& db, const GroundTruth& truth,
                    SupervisorOptions options);
  /// Blocks until every admitted session reached a terminal state.
  ~SessionSupervisor();

  SessionSupervisor(const SessionSupervisor&) = delete;
  SessionSupervisor& operator=(const SessionSupervisor&) = delete;

  /// Creates the sessions directory and spawns workers + watchdog. Must be
  /// called (once) before Submit/RecoverSessions.
  Status Start();

  /// Admission control. Rejects with ResourceExhausted when the queue is
  /// full (supervisor.shed), InvalidArgument for a bad id or a duplicate of
  /// a queued/running session, FailedPrecondition before Start/after
  /// Shutdown. On success the manifest is durable before Submit returns.
  Status Submit(SessionSpec spec);

  /// Recovery sweep: re-admits every session with a surviving manifest,
  /// resuming from its checkpoint chain. Recovered sessions bypass the
  /// shed check (they were admitted once already; at startup the queue is
  /// empty anyway). Returns the number re-admitted. Sessions past
  /// max_recovery_attempts are abandoned (supervisor.recovery_abandoned).
  std::size_t RecoverSessions();

  /// Blocks until the queue is empty and no session is running.
  void Drain();

  /// Begins a graceful drain (SIGTERM semantics for the network daemon):
  /// new Submits are rejected with Unavailable, queued sessions are left in
  /// the queue — their durable manifests make them recoverable by the next
  /// process — and every running session gets a graceful stop so it
  /// checkpoints at the next round boundary. Workers exit once their
  /// current session is terminal; call Shutdown() afterwards to join them.
  /// Idempotent.
  void BeginDrain();

  /// Stops accepting, drains, and joins all threads. Idempotent.
  void Shutdown();

  std::size_t running_sessions() const;
  std::size_t queued_sessions() const;
  /// True while `id` is queued or running (not yet terminal).
  bool IsActive(const std::string& id) const;
  /// True once BeginDrain() was called.
  bool draining() const;

  /// Reports of every terminal admission so far, in completion order.
  std::vector<SessionReport> Reports() const;
  /// The newest report for `id`, or nullopt-like empty optional.
  bool FindReport(const std::string& id, SessionReport* out) const;

  const SupervisorOptions& options() const { return options_; }

 private:
  struct Pending {
    SessionSpec spec;
    std::chrono::steady_clock::time_point enqueued;
    bool recovered = false;
  };
  /// Watchdog view of a running session. The token lives here (stable
  /// address, heap-allocated) for the whole run.
  struct Running {
    CancellationToken token;
    Deadline deadline;
    int escalation = 0;  // 0 = none, 1 = graceful sent, 2 = hard sent.
    bool expired_seen = false;
    std::chrono::steady_clock::time_point expired_seen_at;
    std::chrono::steady_clock::time_point escalated_at;
  };

  void WorkerLoop();
  void WatchdogLoop();
  /// Runs one admitted session start to terminal state. `run` is the
  /// Running entry registered for it (owned by running_ while inside).
  SessionReport RunOne(const Pending& item, Running* run);

  const Database& db_;
  const GroundTruth& truth_;
  const SupervisorOptions options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // Workers: queue non-empty or stopping.
  std::condition_variable idle_cv_;   // Drain: queue empty and none running.
  // The watchdog polls on its own condition variable: sharing work_cv_ would
  // let its wait_for consume a notify_one meant for a worker (lost wakeup).
  std::condition_variable watchdog_cv_;
  std::deque<Pending> queue_;
  std::size_t admitting_ = 0;  // Ids reserved but not yet enqueued (their
                               // manifest write is in flight outside mu_);
                               // counted toward the queue depth.
  std::map<std::string, std::unique_ptr<Running>> running_;
  std::set<std::string> active_ids_;  // Queued or running.
  std::vector<SessionReport> reports_;
  std::vector<std::thread> workers_;
  std::thread watchdog_;
  bool started_ = false;
  bool stopping_ = false;        // Workers: drain the queue, then exit.
  bool draining_ = false;        // Workers: finish the running session and
                                 // exit without dequeuing (queued manifests
                                 // stay durable for recovery).
  bool watchdog_stop_ = false;   // Watchdog: exit now (set after workers).
};

}  // namespace veritas

#endif  // VERITAS_SERVE_SESSION_SUPERVISOR_H_
