// SessionSpec + durable admission manifests for the session supervisor.
//
// A checkpoint (core/session_checkpoint) captures a session's *state* but
// not its *configuration* — which strategy, oracle chain, seed and budget
// produced that state. The supervisor therefore writes a small manifest
// file (`<dir>/<id>.session`, atomic + fsync'd via util/durable_file) at
// admission time and deletes it on successful completion. After a crash or
// eviction, the startup recovery sweep only has to scan the sessions
// directory: every manifest still present names an interrupted session, and
// re-running its spec with the standard resume path (`<dir>/<id>.ckpt`)
// continues it bit-exactly from the newest verifying checkpoint generation.
#ifndef VERITAS_SERVE_SESSION_MANIFEST_H_
#define VERITAS_SERVE_SESSION_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/resource_budget.h"
#include "util/result.h"

namespace veritas {

/// Everything needed to (re)construct one supervised session. All fields
/// are plain configuration — the mutable state lives in the checkpoint.
struct SessionSpec {
  /// Unique per supervisor; names the manifest and checkpoint files. Must
  /// be non-empty and contain no whitespace or path separators.
  std::string id;
  std::string strategy = "approx_meu";
  std::string model = "accu";
  std::string oracle = "perfect";
  std::size_t max_validations = 20;
  std::size_t batch_size = 1;
  std::uint64_t seed = 42;
  /// Wall-clock budget per admission, started when the session begins
  /// running (not while queued). <= 0 uses the supervisor default.
  long deadline_ms = 0;
  /// Per-session resource budget; unlimited uses the supervisor default.
  ResourceBudget budget;
  /// FaultPlan spec for a FlakyOracle decorator ("" = none).
  std::string flaky_plan;
  /// Retry attempts beyond the first for transient oracle failures.
  std::size_t retries = 0;
  /// > 0 simulates a hung oracle: every answer stalls up to this many
  /// seconds unless a hard stop arrives first (see serve/stall_oracle.h).
  double stall_seconds = 0.0;
  bool use_delta_fusion = true;
  /// Lookahead-scan threads requested for the session's strategy. The
  /// supervisor caps the effective value so workers x threads cannot
  /// oversubscribe the host (SupervisorOptions::max_total_threads).
  std::size_t threads = 1;
  /// Times the recovery sweep has re-admitted this session. Maintained by
  /// the supervisor (not callers) so a permanently failing session cannot
  /// crash-loop through recovery forever.
  std::size_t recovery_attempts = 0;
};

/// "" when the id is valid, else the reason it is not.
std::string ValidateSessionId(const std::string& id);

/// Manifest (`<id>.session`) and checkpoint (`<id>.ckpt`) paths for a spec.
std::string SessionManifestPath(const std::string& dir, const std::string& id);
std::string SessionCheckpointPath(const std::string& dir,
                                  const std::string& id);

/// Serializes `spec` as "key value" lines (one per field, insertion-stable).
/// Shared by the manifest format and the network protocol (net/protocol),
/// so a spec that crossed the wire round-trips bit-identically into the
/// manifest a recovery sweep later replays.
std::string SerializeSessionSpecFields(const SessionSpec& spec);

/// Applies one "key value" line to `spec`. Returns InvalidArgument for a
/// recognized key with an unparsable value; unknown keys are skipped (so
/// older binaries read newer specs) and reported via `*known = false`.
Status ApplySessionSpecField(const std::string& key, const std::string& value,
                             SessionSpec* spec, bool* known = nullptr);

/// Serializes `spec` and writes it atomically (fsync'd) to `path`.
Status SaveSessionManifest(const SessionSpec& spec, const std::string& path);

/// Reads a manifest back. InvalidArgument on unknown version, truncation or
/// malformed fields; NotFound when the file does not exist.
Result<SessionSpec> LoadSessionManifest(const std::string& path);

/// Ids of every manifest (`*.session`) in `dir`, sorted. IoError when the
/// directory cannot be read.
Result<std::vector<std::string>> ListSessionManifests(const std::string& dir);

/// Deletes `*.tmp.<pid>.<serial>` files in `dir` whose writing process is
/// dead (a SIGKILL between AtomicWriteFile's write and rename strands the
/// temp file forever — nothing else ever reclaims it). Files belonging to
/// the current process or to any still-live pid are left alone, so a
/// concurrent checkpointer is never sabotaged. Returns the number removed.
std::size_t RemoveOrphanTempFiles(const std::string& dir);

}  // namespace veritas

#endif  // VERITAS_SERVE_SESSION_MANIFEST_H_
