#include "exp/harness.h"

#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/strategy_factory.h"
#include "fusion/accu.h"
#include "util/rng.h"

namespace veritas {

std::vector<CurvePoint> SampleCurve(const SessionTrace& trace,
                                    std::size_t conflicting,
                                    const std::vector<double>& fractions) {
  std::vector<CurvePoint> points;
  points.reserve(fractions.size());
  for (double fraction : fractions) {
    const std::size_t target = static_cast<std::size_t>(
        std::ceil(fraction * static_cast<double>(conflicting)));
    CurvePoint point;
    point.fraction = fraction;
    if (trace.steps.empty()) {
      points.push_back(point);
      continue;
    }
    // A target of zero validations is the pre-feedback baseline: every step
    // satisfies num_validated >= 0, so scanning would misreport the state
    // after the first batch at x = 0. Report the 0% starting point instead.
    if (target == 0) {
      points.push_back(point);
      continue;
    }
    // First step with at least `target` cumulative validations; if the trace
    // ended earlier, sample its last step.
    std::size_t idx = trace.steps.size();
    for (std::size_t s = 0; s < trace.steps.size(); ++s) {
      if (trace.steps[s].num_validated >= target) {
        idx = s;
        break;
      }
    }
    if (idx == trace.steps.size()) idx = trace.steps.size() - 1;
    point.validated = trace.steps[idx].num_validated;
    point.distance_reduction_pct = trace.DistanceReductionPercent(idx);
    point.uncertainty_reduction_pct = trace.UncertaintyReductionPercent(idx);
    points.push_back(point);
  }
  return points;
}

Result<CurveResult> RunCurve(const Database& db, const GroundTruth& truth,
                             const FusionModel& model,
                             const std::string& strategy_name,
                             FeedbackOracle* oracle,
                             const CurveOptions& options) {
  VERITAS_ASSIGN_OR_RETURN(std::unique_ptr<Strategy> strategy,
                           MakeStrategy(strategy_name));
  const std::size_t conflicting = db.ConflictingItems().size();
  double max_fraction = 0.0;
  for (double f : options.report_fractions) {
    max_fraction = std::max(max_fraction, f);
  }
  SessionOptions session = options.session;
  const std::size_t budget = static_cast<std::size_t>(
      std::ceil(max_fraction * static_cast<double>(conflicting)));
  session.max_validations = std::min(session.max_validations, budget);

  Rng rng(options.seed);
  FeedbackSession feedback(db, model, strategy.get(), oracle, truth, session,
                           &rng);
  VERITAS_ASSIGN_OR_RETURN(SessionTrace trace, feedback.Run());

  // Surface silent non-convergence (§3's caveat): the curves are still
  // produced, but the reader should know some rounds used partial results.
  if (trace.fusion_nonconverged_rounds > 0 ||
      !trace.final_fusion.converged()) {
    std::cerr << "warning: fusion did not converge in "
              << trace.fusion_nonconverged_rounds << " of "
              << trace.steps.size() << " round(s) for strategy '"
              << strategy_name << "' (final fusion "
              << (trace.final_fusion.converged() ? "converged"
                                                 : "not converged")
              << ")\n";
  }

  CurveResult result;
  result.strategy = strategy_name;
  result.mean_select_seconds = trace.MeanSelectSeconds();
  result.points = SampleCurve(trace, conflicting, options.report_fractions);
  result.trace = std::move(trace);
  return result;
}

Result<CurveResult> RunCurvePerfect(const Database& db,
                                    const GroundTruth& truth,
                                    const FusionModel& model,
                                    const std::string& strategy_name,
                                    const CurveOptions& options) {
  PerfectOracle oracle;
  return RunCurve(db, truth, model, strategy_name, &oracle, options);
}

}  // namespace veritas
