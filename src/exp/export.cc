#include "exp/export.h"

#include "util/csv.h"
#include "util/strings.h"

namespace veritas {

Status WriteTraceCsv(const SessionTrace& trace, const Database& db,
                     const std::string& path) {
  std::vector<CsvRow> rows;
  rows.push_back({"step", "num_validated", "items", "distance",
                  "uncertainty", "select_seconds", "fuse_seconds",
                  "distance_reduction_pct", "uncertainty_reduction_pct"});
  // Step 0: the unaided fusion baseline.
  rows.push_back({"0", "0", "", FormatDouble(trace.initial_distance, 6),
                  FormatDouble(trace.initial_uncertainty, 6), "0", "0", "0",
                  "0"});
  for (std::size_t s = 0; s < trace.steps.size(); ++s) {
    const SessionStep& step = trace.steps[s];
    std::vector<std::string> names;
    names.reserve(step.items.size());
    for (ItemId item : step.items) names.push_back(db.item(item).name);
    rows.push_back({std::to_string(s + 1),
                    std::to_string(step.num_validated), Join(names, "|"),
                    FormatDouble(step.distance, 6),
                    FormatDouble(step.uncertainty, 6),
                    FormatDouble(step.select_seconds, 6),
                    FormatDouble(step.fuse_seconds, 6),
                    FormatDouble(trace.DistanceReductionPercent(s), 3),
                    FormatDouble(trace.UncertaintyReductionPercent(s), 3)});
  }
  return WriteCsvFile(path, rows);
}

Status WriteCurvesCsv(const std::vector<CurveResult>& curves,
                      const std::string& path) {
  std::vector<CsvRow> rows;
  rows.push_back({"strategy", "fraction", "validated",
                  "distance_reduction_pct", "uncertainty_reduction_pct",
                  "mean_select_seconds"});
  for (const CurveResult& curve : curves) {
    for (const CurvePoint& point : curve.points) {
      rows.push_back({curve.strategy, FormatDouble(point.fraction, 4),
                      std::to_string(point.validated),
                      FormatDouble(point.distance_reduction_pct, 3),
                      FormatDouble(point.uncertainty_reduction_pct, 3),
                      FormatDouble(curve.mean_select_seconds, 6)});
    }
  }
  return WriteCsvFile(path, rows);
}

Status WriteFusionCsv(const Database& db, const FusionResult& fusion,
                      const std::string& path) {
  std::vector<CsvRow> rows;
  rows.push_back({"item", "value", "probability", "winner"});
  for (ItemId i = 0; i < db.num_items(); ++i) {
    const ClaimIndex winner = fusion.WinningClaim(i);
    for (ClaimIndex k = 0; k < db.num_claims(i); ++k) {
      rows.push_back({db.item(i).name, db.item(i).claims[k].value,
                      FormatDouble(fusion.prob(i, k), 6),
                      k == winner ? "1" : "0"});
    }
  }
  return WriteCsvFile(path, rows);
}

}  // namespace veritas
