#include "exp/bench_json.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/durable_file.h"

namespace veritas {

namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string QuotedJson(const std::string& s) {
  return "\"" + EscapeJson(s) + "\"";
}

std::string NumberJson(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no NaN/Inf.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

}  // namespace

BenchJsonRecord& BenchJsonRecord::Set(const std::string& key, double value) {
  fields_.emplace_back(key, NumberJson(value));
  return *this;
}

BenchJsonRecord& BenchJsonRecord::Set(const std::string& key,
                                      std::size_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

BenchJsonRecord& BenchJsonRecord::Set(const std::string& key,
                                      const std::string& value) {
  fields_.emplace_back(key, QuotedJson(value));
  return *this;
}

BenchJsonRecord& BenchJsonRecord::Set(const std::string& key,
                                      const char* value) {
  return Set(key, std::string(value));
}

BenchJsonRecord& BenchJsonRecord::Set(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

void BenchJsonFile::SetMeta(const std::string& key, const std::string& value) {
  meta_.emplace_back(key, QuotedJson(value));
}

BenchJsonRecord& BenchJsonFile::Add(std::string name) {
  records_.emplace_back(std::move(name));
  return records_.back();
}

std::string BenchJsonFile::Render() const {
  std::ostringstream out;
  out << "{\n  \"schema\": " << QuotedJson(schema_);
  for (const auto& [key, value] : meta_) {
    out << ",\n  " << QuotedJson(key) << ": " << value;
  }
  out << ",\n  \"records\": [";
  for (std::size_t r = 0; r < records_.size(); ++r) {
    const BenchJsonRecord& rec = records_[r];
    out << (r == 0 ? "" : ",") << "\n    {\"name\": " << QuotedJson(rec.name_);
    for (const auto& [key, value] : rec.fields_) {
      out << ", " << QuotedJson(key) << ": " << value;
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

Status BenchJsonFile::Write(const std::string& path) const {
  // Atomic replace: interrupted benchmark runs never leave a torn JSON file
  // for downstream tooling to choke on.
  return AtomicWriteFile(path, Render());
}

}  // namespace veritas
