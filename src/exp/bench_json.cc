#include "exp/bench_json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>

#include "util/durable_file.h"

namespace veritas {

namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string QuotedJson(const std::string& s) {
  return "\"" + EscapeJson(s) + "\"";
}

std::string NumberJson(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no NaN/Inf.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

// Scanner for exactly the flat subset Render() emits: one top-level object
// of scalar metadata plus a "records" array of flat scalar objects. Scalar
// values are captured in *rendered* form (quotes and escapes intact), so a
// parse → merge → render round-trip preserves every untouched byte of a
// record, including number formatting another binary chose.
struct Scanner {
  std::string_view s;
  std::size_t i = 0;

  void SkipWs() {
    while (i < s.size() &&
           (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' || s[i] == '\r')) {
      ++i;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool Peek(char c) {
    SkipWs();
    return i < s.size() && s[i] == c;
  }

  /// Parses a quoted string; `raw` gets the quoted token verbatim, `text`
  /// the unescaped payload (either may be null).
  bool String(std::string* raw, std::string* text) {
    SkipWs();
    if (i >= s.size() || s[i] != '"') return false;
    const std::size_t start = i++;
    std::string out;
    while (i < s.size()) {
      const char c = s[i];
      if (c == '\\') {
        if (i + 1 >= s.size()) return false;
        switch (s[i + 1]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case '/': out += '/'; break;
          default: return false;  // \uXXXX etc. — never emitted by Render.
        }
        i += 2;
        continue;
      }
      if (c == '"') {
        ++i;
        if (raw != nullptr) *raw = std::string(s.substr(start, i - start));
        if (text != nullptr) *text = std::move(out);
        return true;
      }
      out += c;
      ++i;
    }
    return false;
  }

  /// Parses any scalar (string, number, true/false/null) into rendered form.
  /// For strings, `text` (optional) also gets the unescaped payload.
  bool Scalar(std::string* raw, std::string* text = nullptr) {
    SkipWs();
    if (i < s.size() && s[i] == '"') return String(raw, text);
    const std::size_t start = i;
    while (i < s.size()) {
      const char c = s[i];
      const bool token = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
                         c == '+' || c == '-' || c == '.' || c == 'E';
      if (!token) break;
      ++i;
    }
    if (i == start) return false;
    *raw = std::string(s.substr(start, i - start));
    return true;
  }
};

}  // namespace

BenchJsonRecord& BenchJsonRecord::Set(const std::string& key, double value) {
  fields_.emplace_back(key, NumberJson(value));
  return *this;
}

BenchJsonRecord& BenchJsonRecord::Set(const std::string& key,
                                      std::size_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

BenchJsonRecord& BenchJsonRecord::Set(const std::string& key,
                                      const std::string& value) {
  fields_.emplace_back(key, QuotedJson(value));
  return *this;
}

BenchJsonRecord& BenchJsonRecord::Set(const std::string& key,
                                      const char* value) {
  return Set(key, std::string(value));
}

BenchJsonRecord& BenchJsonRecord::Set(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

void BenchJsonFile::SetMeta(const std::string& key, const std::string& value) {
  meta_.emplace_back(key, QuotedJson(value));
}

BenchJsonRecord& BenchJsonFile::Add(std::string name) {
  records_.emplace_back(std::move(name));
  return records_.back();
}

std::string BenchJsonFile::Render() const {
  std::ostringstream out;
  out << "{\n  \"schema\": " << QuotedJson(schema_);
  for (const auto& [key, value] : meta_) {
    out << ",\n  " << QuotedJson(key) << ": " << value;
  }
  out << ",\n  \"records\": [";
  for (std::size_t r = 0; r < records_.size(); ++r) {
    const BenchJsonRecord& rec = records_[r];
    out << (r == 0 ? "" : ",") << "\n    {\"name\": " << QuotedJson(rec.name_);
    for (const auto& [key, value] : rec.fields_) {
      out << ", " << QuotedJson(key) << ": " << value;
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

Status BenchJsonFile::Write(const std::string& path) const {
  // Atomic replace: interrupted benchmark runs never leave a torn JSON file
  // for downstream tooling to choke on.
  return AtomicWriteFile(path, Render());
}

Result<BenchJsonFile> BenchJsonFile::Parse(const std::string& text) {
  Scanner sc{text};
  if (!sc.Eat('{')) {
    return Status::InvalidArgument("bench json: expected top-level object");
  }
  BenchJsonFile file("");
  bool first = true;
  while (!sc.Peek('}')) {
    if (!first && !sc.Eat(',')) {
      return Status::InvalidArgument("bench json: expected ',' between keys");
    }
    first = false;
    std::string key;
    if (!sc.String(nullptr, &key) || !sc.Eat(':')) {
      return Status::InvalidArgument("bench json: malformed key");
    }
    if (key == "schema") {
      if (!sc.String(nullptr, &file.schema_)) {
        return Status::InvalidArgument("bench json: schema must be a string");
      }
    } else if (key == "records") {
      if (!sc.Eat('[')) {
        return Status::InvalidArgument("bench json: records must be an array");
      }
      bool first_rec = true;
      while (!sc.Peek(']')) {
        if (!first_rec && !sc.Eat(',')) {
          return Status::InvalidArgument(
              "bench json: expected ',' between records");
        }
        first_rec = false;
        if (!sc.Eat('{')) {
          return Status::InvalidArgument("bench json: record must be object");
        }
        BenchJsonRecord rec("");
        bool named = false;
        bool first_field = true;
        while (!sc.Peek('}')) {
          if (!first_field && !sc.Eat(',')) {
            return Status::InvalidArgument(
                "bench json: expected ',' between fields");
          }
          first_field = false;
          std::string fkey;
          if (!sc.String(nullptr, &fkey) || !sc.Eat(':')) {
            return Status::InvalidArgument("bench json: malformed field key");
          }
          std::string raw;
          std::string unescaped;
          if (!sc.Scalar(&raw, &unescaped)) {
            return Status::InvalidArgument(
                "bench json: record fields must be flat scalars");
          }
          if (fkey == "name") {
            rec.name_ = unescaped;
            named = true;
          } else {
            rec.fields_.emplace_back(std::move(fkey), std::move(raw));
          }
        }
        sc.Eat('}');
        if (!named) {
          return Status::InvalidArgument("bench json: record missing name");
        }
        file.records_.push_back(std::move(rec));
      }
      sc.Eat(']');
    } else {
      std::string raw;
      if (!sc.Scalar(&raw)) {
        return Status::InvalidArgument("bench json: meta value not scalar");
      }
      file.meta_.emplace_back(std::move(key), std::move(raw));
    }
  }
  sc.Eat('}');
  sc.SkipWs();
  if (sc.i != text.size()) {
    return Status::InvalidArgument("bench json: trailing content");
  }
  return file;
}

namespace {

const std::string* FindField(
    const std::vector<std::pair<std::string, std::string>>& fields,
    const std::string& key) {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace

Status BenchJsonFile::MergeInto(
    const std::string& path, const std::vector<std::string>& key_fields) const {
  BenchJsonFile merged = *this;
  std::ifstream in(path, std::ios::binary);
  if (in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    Result<BenchJsonFile> existing = Parse(buf.str());
    // An unreadable or foreign file is replaced outright — the merge only
    // preserves documents this writer produced.
    if (existing.ok()) {
      merged = std::move(existing).value();
      merged.schema_ = schema_;
      for (const auto& [key, value] : meta_) {
        bool replaced = false;
        for (auto& [old_key, old_value] : merged.meta_) {
          if (old_key == key) {
            old_value = value;
            replaced = true;
            break;
          }
        }
        if (!replaced) merged.meta_.emplace_back(key, value);
      }
      for (const BenchJsonRecord& rec : records_) {
        BenchJsonRecord* slot = nullptr;
        for (BenchJsonRecord& old : merged.records_) {
          if (old.name_ != rec.name_) continue;
          bool match = true;
          for (const std::string& key : key_fields) {
            const std::string* a = FindField(old.fields_, key);
            const std::string* b = FindField(rec.fields_, key);
            if ((a == nullptr) != (b == nullptr) ||
                (a != nullptr && *a != *b)) {
              match = false;
              break;
            }
          }
          if (match) {
            slot = &old;
            break;
          }
        }
        if (slot != nullptr) {
          *slot = rec;  // Replace in place, keeping document order stable.
        } else {
          merged.records_.push_back(rec);
        }
      }
    }
  }
  return merged.Write(path);
}

}  // namespace veritas
