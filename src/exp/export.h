// Export of experiment artifacts to CSV, so session traces and
// effectiveness curves can be plotted or post-processed outside C++
// (gnuplot, pandas, spreadsheets).
#ifndef VERITAS_EXP_EXPORT_H_
#define VERITAS_EXP_EXPORT_H_

#include <string>
#include <vector>

#include "core/session.h"
#include "exp/harness.h"
#include "util/status.h"

namespace veritas {

/// Writes a session trace as CSV:
///   step,num_validated,items,distance,uncertainty,select_seconds,
///   fuse_seconds,distance_reduction_pct,uncertainty_reduction_pct
/// The `items` field joins the item names validated in the step with '|'.
Status WriteTraceCsv(const SessionTrace& trace, const Database& db,
                     const std::string& path);

/// Writes a set of curves (one strategy each) as long-format CSV:
///   strategy,fraction,validated,distance_reduction_pct,
///   uncertainty_reduction_pct,mean_select_seconds
Status WriteCurvesCsv(const std::vector<CurveResult>& curves,
                      const std::string& path);

/// Writes the final fusion output as CSV:
///   item,value,probability,winner
Status WriteFusionCsv(const Database& db, const FusionResult& fusion,
                      const std::string& path);

}  // namespace veritas

#endif  // VERITAS_EXP_EXPORT_H_
