#include "exp/scale.h"

#include <cstdlib>

#include "util/strings.h"

namespace veritas {

ScaleMode GetScaleMode() {
  const char* env = std::getenv("VERITAS_SCALE");
  if (env == nullptr) return ScaleMode::kSmall;
  const std::string value = ToLower(env);
  if (value == "paper") return ScaleMode::kPaper;
  if (value == "medium") return ScaleMode::kMedium;
  return ScaleMode::kSmall;
}

std::string ScaleModeName(ScaleMode mode) {
  switch (mode) {
    case ScaleMode::kSmall:
      return "small";
    case ScaleMode::kMedium:
      return "medium";
    case ScaleMode::kPaper:
      return "paper";
  }
  return "unknown";
}

namespace {

std::size_t Pick(ScaleMode mode, std::size_t small, std::size_t medium,
                 std::size_t paper) {
  switch (mode) {
    case ScaleMode::kSmall:
      return small;
    case ScaleMode::kMedium:
      return medium;
    case ScaleMode::kPaper:
      return paper;
  }
  return small;
}

}  // namespace

NamedDataset MakeBooksLike(ScaleMode mode, std::uint64_t seed) {
  LongTailConfig config;
  config.num_items = Pick(mode, 300, 800, 1263);
  config.num_sources = Pick(mode, 210, 560, 894);
  config.avg_votes_per_item = 19.0;
  config.pareto_alpha = 0.7;
  config.max_coverage_fraction = 0.5;
  // Accuracy spread + copying produce the confidently-wrong fused items
  // real bookstore data exhibits (aggregators copying author lists).
  config.accuracy_mean = 0.7;
  config.accuracy_sd = 0.15;
  config.copier_fraction = 0.3;
  config.seed = seed;
  return {"Books-like", GenerateLongTail(config)};
}

NamedDataset MakeFlightsDayLike(ScaleMode mode, std::uint64_t seed) {
  DenseConfig config;
  config.num_items = Pick(mode, 400, 1500, 5836);
  config.num_sources = 38;
  config.density = 0.36;
  // Flight-status sources are known heavy copiers of each other (Dong et
  // al.); copying yields the correlated confident mistakes of the real
  // snapshot and the US-vs-QBC crossover of Figure 3b.
  config.accuracy_mean = 0.75;
  config.accuracy_sd = 0.1;
  config.copier_fraction = 0.5;
  config.seed = seed;
  return {"FlightsDay-like", GenerateDense(config)};
}

NamedDataset MakePopulationLike(ScaleMode mode, std::uint64_t seed) {
  LongTailConfig config;
  config.num_items = Pick(mode, 2000, 8000, 40696);
  config.num_sources = Pick(mode, 125, 500, 2545);
  config.avg_votes_per_item = 1.15;
  config.pareto_alpha = 0.6;
  config.max_coverage_fraction = 0.3;
  config.accuracy_mean = 0.7;
  config.accuracy_sd = 0.15;
  config.copier_fraction = 0.3;
  config.seed = seed;
  return {"Population-like", GenerateLongTail(config)};
}

NamedDataset MakeFlightsLike(ScaleMode mode, std::uint64_t seed) {
  DenseConfig config;
  config.num_items = Pick(mode, 2000, 10000, 121567);
  config.num_sources = 38;
  config.density = 0.42;
  config.accuracy_mean = 0.75;
  config.accuracy_sd = 0.1;
  config.copier_fraction = 0.5;
  config.seed = seed;
  return {"Flights-like", GenerateDense(config)};
}

}  // namespace veritas
