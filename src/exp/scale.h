// Experiment scaling. The paper's datasets range from 1.2k to 121k items;
// regenerating every figure at full size takes hours. The VERITAS_SCALE
// environment variable selects how large the synthetic stand-ins are:
//   "small"  (default) — minutes for the whole bench suite,
//   "medium"           — closer to FlightsDay size,
//   "paper"            — paper-sized item counts.
// Shapes (who wins, crossovers, timing ratios) are stable across scales.
#ifndef VERITAS_EXP_SCALE_H_
#define VERITAS_EXP_SCALE_H_

#include <cstddef>
#include <string>

#include "data/synthetic.h"

namespace veritas {

/// Bench size preset.
enum class ScaleMode { kSmall, kMedium, kPaper };

/// Reads VERITAS_SCALE ("small" | "medium" | "paper"); defaults to kSmall.
ScaleMode GetScaleMode();

/// Human-readable name of a mode.
std::string ScaleModeName(ScaleMode mode);

/// A synthetic stand-in for one of the paper's datasets.
struct NamedDataset {
  std::string name;
  SyntheticDataset data;
};

/// Books-like: long-tail, many sources, ~19 votes/item
/// (paper: 1263 items, 894 sources).
NamedDataset MakeBooksLike(ScaleMode mode, std::uint64_t seed = 7);

/// FlightsDay-like: dense, 38 sources, d ~ 0.36
/// (paper: 5836 items).
NamedDataset MakeFlightsDayLike(ScaleMode mode, std::uint64_t seed = 11);

/// Population-like: extremely sparse long-tail, ~1.15 votes/item, only a few
/// percent of items conflicting (paper: 40696 items, 2545 sources).
NamedDataset MakePopulationLike(ScaleMode mode, std::uint64_t seed = 13);

/// Flights-like: the large dense dataset (paper: 121567 items, 38 sources).
NamedDataset MakeFlightsLike(ScaleMode mode, std::uint64_t seed = 17);

}  // namespace veritas

#endif  // VERITAS_EXP_SCALE_H_
