// Plain-text reporting helpers shared by the bench binaries: aligned tables
// and CSV emission, so every figure/table of the paper prints both a
// human-readable block and machine-readable rows.
#ifndef VERITAS_EXP_REPORT_H_
#define VERITAS_EXP_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

namespace veritas {

/// Column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Prints with aligned columns, a header rule, and `indent` leading spaces.
  void Print(std::ostream& os, int indent = 0) const;

  /// Prints as CSV (header + rows).
  void PrintCsv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.3%" style formatting.
std::string Pct(double value, int precision = 1);

/// Fixed-precision number.
std::string Num(double value, int precision = 3);

/// Seconds with automatic precision ("0.0012 s", "12.3 s").
std::string Secs(double seconds);

/// Prints a banner line for a figure/table section.
void PrintBanner(std::ostream& os, const std::string& title);

/// If the VERITAS_CSV_DIR environment variable is set, writes the table as
/// CSV to "<dir>/<name>.csv" so bench outputs can be post-processed or
/// plotted. Returns true when a file was written. Failures are reported on
/// stderr but never abort a bench run.
bool MaybeExportCsv(const std::string& name, const TextTable& table);

}  // namespace veritas

#endif  // VERITAS_EXP_REPORT_H_
