#include "exp/report.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/csv.h"
#include "util/durable_file.h"
#include "util/strings.h"

namespace veritas {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::Print(std::ostream& os, int indent) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  auto print_row = [&](const std::vector<std::string>& row) {
    os << pad;
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << pad << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::PrintCsv(std::ostream& os) const {
  os << FormatCsvRow(header_) << '\n';
  for (const auto& row : rows_) os << FormatCsvRow(row) << '\n';
}

std::string Pct(double value, int precision) {
  return FormatDouble(value, precision) + "%";
}

std::string Num(double value, int precision) {
  return FormatDouble(value, precision);
}

std::string Secs(double seconds) {
  if (seconds < 0.01) return FormatDouble(seconds, 5) + " s";
  if (seconds < 1.0) return FormatDouble(seconds, 4) + " s";
  return FormatDouble(seconds, 2) + " s";
}

bool MaybeExportCsv(const std::string& name, const TextTable& table) {
  const char* dir = std::getenv("VERITAS_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return false;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ostringstream out;
  table.PrintCsv(out);
  // Atomic replace: a crash mid-export cannot leave a truncated CSV behind.
  const Status status = AtomicWriteFile(path, out.str());
  if (!status.ok()) {
    std::cerr << "VERITAS_CSV_DIR: write failed for " << path << ": "
              << status << "\n";
    return false;
  }
  return true;
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n'
     << title << '\n'
     << std::string(72, '=') << '\n';
}

}  // namespace veritas
