// Machine-readable benchmark baselines. Bench binaries that accept
// `--json <path>` serialize their measurements through this writer so runs
// can be compared across commits (see BENCH_fusion.json at the repo root).
//
// The format is deliberately flat: one top-level object with a schema tag,
// free-form metadata strings, and a `records` array of named measurements
// whose fields are numbers, strings or booleans. No external JSON library —
// a small scanner for exactly this flat subset handles the read side, so
// several bench binaries can merge their records into one shared baseline
// file (BENCH_fusion.json) without clobbering each other.
#ifndef VERITAS_EXP_BENCH_JSON_H_
#define VERITAS_EXP_BENCH_JSON_H_

#include <string>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace veritas {

/// One named measurement, e.g. {"name": "fusion_full", "items": 4000,
/// "ns_per_op": 1.2e6}. Fields keep insertion order.
class BenchJsonRecord {
 public:
  explicit BenchJsonRecord(std::string name) : name_(std::move(name)) {}

  BenchJsonRecord& Set(const std::string& key, double value);
  BenchJsonRecord& Set(const std::string& key, std::size_t value);
  BenchJsonRecord& Set(const std::string& key, const std::string& value);
  BenchJsonRecord& Set(const std::string& key, const char* value);
  BenchJsonRecord& Set(const std::string& key, bool value);

 private:
  friend class BenchJsonFile;
  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;  // Rendered.
};

/// Accumulates records and writes the whole document at once.
class BenchJsonFile {
 public:
  explicit BenchJsonFile(std::string schema) : schema_(std::move(schema)) {}

  /// Top-level metadata string (e.g. scale mode, dataset name).
  void SetMeta(const std::string& key, const std::string& value);

  /// Adds a record; the reference stays valid until the next Add.
  BenchJsonRecord& Add(std::string name);

  /// Writes the document to `path` (overwrite).
  Status Write(const std::string& path) const;

  /// Merge-safe append: parses the existing document at `path` (if any),
  /// upserts this file's records into it, and atomically rewrites the whole
  /// document. A record replaces an existing same-named record when every
  /// field listed in `key_fields` agrees (a field absent from both sides
  /// counts as agreeing); otherwise it is appended. Meta keys from this file
  /// overwrite same-named keys; all other existing meta and records are
  /// preserved in their original order. A missing or unparsable file is
  /// replaced outright, so the call degrades to Write().
  Status MergeInto(const std::string& path,
                   const std::vector<std::string>& key_fields = {}) const;

  /// Parses a document previously produced by Render() (any whitespace
  /// layout; values must be flat scalars). The inverse of Render up to
  /// number formatting, which is preserved verbatim.
  static Result<BenchJsonFile> Parse(const std::string& text);

  /// The rendered document, for tests and stdout mirroring.
  std::string Render() const;

 private:
  std::string schema_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<BenchJsonRecord> records_;
};

}  // namespace veritas

#endif  // VERITAS_EXP_BENCH_JSON_H_
