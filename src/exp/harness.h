// Shared experiment harness: runs a (strategy, oracle) pair through a
// feedback session and samples the effectiveness curves at fixed fractions
// of validated items — the raw material of every figure in §5.
#ifndef VERITAS_EXP_HARNESS_H_
#define VERITAS_EXP_HARNESS_H_

#include <string>
#include <vector>

#include "core/oracle.h"
#include "core/session.h"
#include "fusion/fusion_model.h"
#include "util/result.h"

namespace veritas {

/// Harness knobs.
struct CurveOptions {
  SessionOptions session;
  /// Fractions of the *conflicting* items at which the curves are sampled;
  /// the largest fraction bounds the validation budget.
  std::vector<double> report_fractions = {0.01, 0.02, 0.05, 0.10,
                                          0.15, 0.20};
  /// Seed for the Rng handed to strategy and oracle.
  std::uint64_t seed = 42;
};

/// One sampled point of an effectiveness curve.
struct CurvePoint {
  double fraction = 0.0;        ///< Requested fraction of conflicting items.
  std::size_t validated = 0;    ///< Items actually validated at this point.
  double distance_reduction_pct = 0.0;     ///< Figure 3 y-axis.
  double uncertainty_reduction_pct = 0.0;  ///< Figure 4 y-axis.
};

/// A full run of one strategy on one dataset.
struct CurveResult {
  std::string strategy;
  SessionTrace trace;
  std::vector<CurvePoint> points;
  double mean_select_seconds = 0.0;  ///< Table 11/12 column.
};

/// Runs `strategy_name` (see MakeStrategy) with `oracle` on (db, truth) and
/// samples the curves. The validation budget is
/// ceil(max(report_fractions) * #conflicting items), further capped by
/// options.session.max_validations.
Result<CurveResult> RunCurve(const Database& db, const GroundTruth& truth,
                             const FusionModel& model,
                             const std::string& strategy_name,
                             FeedbackOracle* oracle,
                             const CurveOptions& options);

/// Convenience: RunCurve with a PerfectOracle.
Result<CurveResult> RunCurvePerfect(const Database& db,
                                    const GroundTruth& truth,
                                    const FusionModel& model,
                                    const std::string& strategy_name,
                                    const CurveOptions& options);

/// Samples a trace at the given fractions of `conflicting` items.
std::vector<CurvePoint> SampleCurve(const SessionTrace& trace,
                                    std::size_t conflicting,
                                    const std::vector<double>& fractions);

}  // namespace veritas

#endif  // VERITAS_EXP_HARNESS_H_
