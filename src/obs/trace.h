// TraceRecorder: scoped spans exported as Chrome trace_event JSON, loadable
// in Perfetto / chrome://tracing. Instrumented code wraps a region in
// VERITAS_SPAN("fuse") (RAII); each thread appends completed spans to its
// own buffer, and Flush/WriteChromeJson merges the buffers into one
// timeline. Recording is off by default: a disabled recorder costs one
// relaxed atomic load per span site, so the instrumentation can stay in the
// hot paths permanently.
#ifndef VERITAS_OBS_TRACE_H_
#define VERITAS_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace veritas {

/// One completed span, Chrome "X" (complete) event semantics.
struct TraceEvent {
  std::string name;
  std::string category;
  double ts_us = 0.0;   ///< Start, microseconds since the recorder epoch.
  double dur_us = 0.0;  ///< Duration, microseconds.
  std::uint32_t tid = 0;
};

/// Thread-safe span sink. Usable as an instance (tests) or through the
/// process-wide Global() every VERITAS_SPAN records into.
class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  static TraceRecorder& Global();

  /// Runtime switch. Spans opened while disabled record nothing even if the
  /// recorder is enabled before they close.
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since the recorder's construction (monotonic).
  double NowMicros() const;

  /// Appends one completed span to the calling thread's buffer. No-op when
  /// disabled.
  void RecordSpan(const char* name, const char* category, double ts_us,
                  double dur_us);

  /// Merges every per-thread buffer into one start-time-ordered list.
  /// Buffers keep their events (Flush is read-only); Clear drops them.
  std::vector<TraceEvent> Flush() const;
  void Clear();

  /// {"displayTimeUnit": "ms", "traceEvents": [...]} — the Chrome
  /// trace_event array format Perfetto and chrome://tracing load directly.
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

 private:
  struct ThreadBuffer {
    std::mutex mu;
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  /// The calling thread's buffer (created and registered on first use).
  ThreadBuffer* LocalBuffer();

  std::atomic<bool> enabled_{false};
  std::uint64_t id_;  ///< Process-unique; TLS cache key (addresses recycle).
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint32_t> next_tid_{1};
  mutable std::mutex mu_;  // Guards buffers_ (the list, not the events).
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII span against the global recorder. When the recorder is disabled at
/// construction the destructor does nothing — one atomic load of overhead.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category = "veritas")
      : recorder_(&TraceRecorder::Global()) {
    if (recorder_->enabled()) {
      name_ = name;
      category_ = category;
      start_us_ = recorder_->NowMicros();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      recorder_->RecordSpan(name_, category_, start_us_,
                            recorder_->NowMicros() - start_us_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  const char* name_ = nullptr;  // Null = span not active (disabled).
  const char* category_ = nullptr;
  double start_us_ = 0.0;
};

#define VERITAS_SPAN_CONCAT_INNER(a, b) a##b
#define VERITAS_SPAN_CONCAT(a, b) VERITAS_SPAN_CONCAT_INNER(a, b)
/// Scoped span over the rest of the enclosing block.
#define VERITAS_SPAN(name) \
  ::veritas::ScopedSpan VERITAS_SPAN_CONCAT(veritas_span_, __LINE__)(name)

}  // namespace veritas

#endif  // VERITAS_OBS_TRACE_H_
