#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/durable_file.h"

namespace veritas {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string Micros(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", us < 0.0 ? 0.0 : us);
  return buf;
}

// Per-thread cache of the buffer registered with a specific recorder.
// Switching a thread between recorders re-registers (a fresh buffer is
// appended to the new recorder); only tests do that, and Flush still sees
// every buffer, so the cost is a little memory, never lost events. The key
// is a process-unique recorder id, NOT the recorder's address: a destroyed
// recorder's address can be recycled by a new one, which would make a stale
// cache entry look current and dangle into freed buffers.
std::atomic<std::uint64_t> next_recorder_id{1};
struct TlsSlot {
  std::uint64_t owner_id = 0;
  void* buffer = nullptr;
};
thread_local TlsSlot tls_slot;

}  // namespace

TraceRecorder::TraceRecorder()
    : id_(next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::Global() {
  // Leaked: spans may still close in static destructors.
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

double TraceRecorder::NowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRecorder::ThreadBuffer* TraceRecorder::LocalBuffer() {
  if (tls_slot.owner_id == id_) {
    return static_cast<ThreadBuffer*>(tls_slot.buffer);
  }
  auto buffer = std::make_shared<ThreadBuffer>();
  buffer->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(buffer);
  }
  tls_slot.owner_id = id_;
  tls_slot.buffer = buffer.get();  // buffers_ keeps it alive past thread exit.
  return buffer.get();
}

void TraceRecorder::RecordSpan(const char* name, const char* category,
                               double ts_us, double dur_us) {
  if (!enabled()) return;
  ThreadBuffer* buffer = LocalBuffer();
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.tid = buffer->tid;
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::Flush() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> merged;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    merged.insert(merged.end(), buffer->events.begin(), buffer->events.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return merged;
}

void TraceRecorder::Clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.clear();
  }
}

std::string TraceRecorder::ToChromeJson() const {
  const std::vector<TraceEvent> events = Flush();
  std::ostringstream out;
  out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out << (i == 0 ? "" : ",") << "\n    {\"name\": \""
        << JsonEscape(e.name) << "\", \"cat\": \"" << JsonEscape(e.category)
        << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid
        << ", \"ts\": " << Micros(e.ts_us) << ", \"dur\": " << Micros(e.dur_us)
        << "}";
  }
  out << (events.empty() ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

Status TraceRecorder::WriteChromeJson(const std::string& path) const {
  // Atomic replace: a crash mid-flush leaves the previous trace (or no
  // file), never a torn JSON document.
  return AtomicWriteFile(path, ToChromeJson());
}

}  // namespace veritas
