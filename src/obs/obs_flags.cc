#include "obs/obs_flags.h"

#include <iostream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace veritas {

ObsOutputs ScanObsFlags(int argc, char** argv) {
  ObsOutputs outputs;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-out") outputs.metrics_path = argv[i + 1];
    if (arg == "--trace-out") outputs.trace_path = argv[i + 1];
  }
  if (!outputs.trace_path.empty()) TraceRecorder::Global().Enable();
  return outputs;
}

Status WriteObsOutputs(const ObsOutputs& outputs) {
  if (!outputs.metrics_path.empty()) {
    VERITAS_RETURN_IF_ERROR(
        MetricsRegistry::Global().WriteJsonFile(outputs.metrics_path));
    std::cout << "wrote metrics snapshot to " << outputs.metrics_path << "\n";
  }
  if (!outputs.trace_path.empty()) {
    VERITAS_RETURN_IF_ERROR(
        TraceRecorder::Global().WriteChromeJson(outputs.trace_path));
    std::cout << "wrote Chrome trace to " << outputs.trace_path
              << " (open in Perfetto or chrome://tracing)\n";
  }
  return Status::OK();
}

}  // namespace veritas
