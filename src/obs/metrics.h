// MetricsRegistry: thread-safe named counters, gauges and bounded-bucket
// histograms for the serving/observability layer. Every hot path (session
// phases, fusion iterations, delta-fusion frontiers, strategy lookaheads,
// oracle retries) funnels its numbers here instead of keeping bespoke
// structs, so one snapshot — JSON for dashboards, text for terminals —
// answers "where did the time and the convergence failures go".
//
// Design constraints:
//   * Instruments are created once and never destroyed; the pointers
//     returned by Get* stay valid for the process lifetime, so call sites
//     can cache them in function-local statics and pay one atomic op per
//     event on the hot path.
//   * Reset() zeroes values but keeps the instruments, so cached pointers
//     survive (tests and benchmark sections reset between phases).
//   * Counters and gauges are lock-free; histograms take a per-instrument
//     mutex (they are observed at phase granularity, not per claim).
#ifndef VERITAS_OBS_METRICS_H_
#define VERITAS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace veritas {

/// Monotonically increasing integer metric. Lock-free.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins double metric (also supports Add). Lock-free via CAS.
class Gauge {
 public:
  void Set(double v);
  void Add(double delta);
  double value() const;

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  void Reset();
  std::atomic<std::uint64_t> bits_{0};  // bit-pattern of a double
};

/// Point-in-time view of a histogram.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Population stddev (Welford).
  double min = 0.0;     ///< Meaningless when count == 0.
  double max = 0.0;
  std::vector<double> edges;           ///< Upper bounds, ascending.
  std::vector<std::uint64_t> buckets;  ///< edges.size() + 1 (overflow last).

  /// Approximate `q`-quantile (q in [0, 1]) by linear interpolation inside
  /// the bucket holding the target rank, clamped to the observed [min, max]
  /// (so the overflow bucket cannot extrapolate past the recorded maximum).
  /// 0 when the histogram is empty. Feeds the p50/p99 latency numbers the
  /// serve bench publishes.
  double Quantile(double q) const;
};

/// Bounded-bucket histogram with exact Welford mean/stddev. A value lands in
/// the first bucket whose upper edge is >= value; values above the last edge
/// land in the implicit overflow bucket.
class Histogram {
 public:
  void Observe(double value);
  HistogramSnapshot Snapshot() const;
  std::uint64_t count() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> edges);
  void Reset();

  mutable std::mutex mu_;
  std::vector<double> edges_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Consistent point-in-time view of every instrument, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// The counter/gauge value or histogram count for `name`, or `fallback`.
  double Value(const std::string& name, double fallback = 0.0) const;
  /// The histogram snapshot for `name`, or nullptr.
  const HistogramSnapshot* FindHistogram(const std::string& name) const;

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, mean, stddev, min, max, sum,
  /// edges: [...], buckets: [...]}}}.
  std::string ToJson() const;
  /// Aligned human-readable dump, one instrument per line.
  std::string ToText() const;
};

/// Named-instrument registry. All methods are thread-safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrument lives in.
  static MetricsRegistry& Global();

  /// Exponentially spaced latency edges, 1us .. ~100s (seconds).
  static std::vector<double> LatencyEdges();
  /// Exponentially spaced count edges, 1 .. ~1e6.
  static std::vector<double> CountEdges();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `edges` must be ascending; only the first Get for a name sets them
  /// (later calls return the existing instrument unchanged). At most 64
  /// finite edges are kept so the histogram stays bounded.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> edges = LatencyEdges());

  MetricsSnapshot Snapshot() const;
  /// Zeroes every value; instruments (and pointers to them) survive.
  void Reset();
  /// Snapshot().ToJson() to a file, written atomically (temp + fsync +
  /// rename) so a crash mid-export never leaves a torn document.
  Status WriteJsonFile(const std::string& path) const;
  /// Snapshot().ToText() to a file, with the same atomic-write guarantee.
  Status WriteTextFile(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace veritas

#endif  // VERITAS_OBS_METRICS_H_
