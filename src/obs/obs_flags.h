// Shared --metrics-out / --trace-out handling for veritas_cli and the bench
// binaries: scan argv once up front (enabling the trace recorder before any
// instrumented code runs), then write the snapshot/trace at the end.
#ifndef VERITAS_OBS_OBS_FLAGS_H_
#define VERITAS_OBS_OBS_FLAGS_H_

#include <string>

#include "util/status.h"

namespace veritas {

/// Observability output destinations ("" = off).
struct ObsOutputs {
  std::string metrics_path;  ///< MetricsRegistry snapshot, JSON.
  std::string trace_path;    ///< Chrome trace_event JSON (Perfetto).
};

/// Scans argv for `--metrics-out <path>` and `--trace-out <path>` and
/// enables the global TraceRecorder when a trace path is present. Does not
/// consume the flags; callers that parse argv themselves should ignore them.
ObsOutputs ScanObsFlags(int argc, char** argv);

/// Writes whichever outputs are configured (metrics snapshot of the global
/// registry, merged trace of the global recorder). Paths left empty are
/// skipped. Prints a one-line confirmation per file to stdout.
Status WriteObsOutputs(const ObsOutputs& outputs);

}  // namespace veritas

#endif  // VERITAS_OBS_OBS_FLAGS_H_
