#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/durable_file.h"

namespace veritas {

namespace {

// JSON number rendering shared with the bench writer's conventions: finite
// shortest-ish doubles, null for NaN/Inf (JSON has neither).
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

void Gauge::Set(double v) {
  bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
}

void Gauge::Add(double delta) {
  std::uint64_t expected = bits_.load(std::memory_order_relaxed);
  while (true) {
    const double updated = std::bit_cast<double>(expected) + delta;
    if (bits_.compare_exchange_weak(expected,
                                    std::bit_cast<std::uint64_t>(updated),
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

double Gauge::value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

void Gauge::Reset() { Set(0.0); }

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  if (edges_.size() > 64) edges_.resize(64);  // Bounded-bucket guarantee.
  buckets_.assign(edges_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  // First bucket whose upper edge is >= value; past the last edge lands in
  // the overflow bucket. edges_ is immutable, so the search needs no lock.
  const std::size_t bucket =
      std::lower_bound(edges_.begin(), edges_.end(), value) - edges_.begin();
  std::lock_guard<std::mutex> lock(mu_);
  ++buckets_[bucket];
  ++count_;
  sum_ += value;
  // Welford: numerically stable running mean / M2.
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot snap;
  snap.count = count_;
  snap.sum = sum_;
  snap.mean = mean_;
  snap.stddev =
      count_ > 0 ? std::sqrt(m2_ / static_cast<double>(count_)) : 0.0;
  snap.min = min_;
  snap.max = max_;
  snap.edges = edges_;
  snap.buckets = buckets_;
  return snap;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based, ceil), then walk the buckets.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const std::uint64_t next = cumulative + buckets[b];
    if (rank <= next) {
      const double lo = b == 0 ? min : edges[b - 1];
      const double hi = b < edges.size() ? edges[b] : max;
      const double frac = static_cast<double>(rank - cumulative) /
                          static_cast<double>(buckets[b]);
      const double value = lo + (hi - lo) * frac;
      return std::min(max, std::max(min, value));
    }
    cumulative = next;
  }
  return max;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = mean_ = m2_ = min_ = max_ = 0.0;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instruments must outlive every static destructor
  // that might still record into them.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::vector<double> MetricsRegistry::LatencyEdges() {
  // 1us .. ~100s, quarter-decade spacing: 33 finite buckets.
  std::vector<double> edges;
  for (double e = 1e-6; e < 200.0; e *= 3.1622776601683795) {
    edges.push_back(e);
  }
  return edges;
}

std::vector<double> MetricsRegistry::CountEdges() {
  std::vector<double> edges;
  for (double e = 1.0; e < 2e6; e *= 4.0) edges.push_back(e);
  return edges;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter());
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge());
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> edges) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot.reset(new Histogram(std::move(edges)));
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace_back(name, hist->Snapshot());
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

Status MetricsRegistry::WriteJsonFile(const std::string& path) const {
  // Atomic replace: a crash mid-export leaves the previous snapshot (or no
  // file), never a torn JSON document.
  return AtomicWriteFile(path, Snapshot().ToJson());
}

Status MetricsRegistry::WriteTextFile(const std::string& path) const {
  return AtomicWriteFile(path, Snapshot().ToText());
}

double MetricsSnapshot::Value(const std::string& name, double fallback) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return static_cast<double>(v);
  }
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  for (const auto& [n, h] : histograms) {
    if (n == name) return static_cast<double>(h.count);
  }
  return fallback;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out << (i == 0 ? "" : ",") << "\n    " << JsonString(counters[i].first)
        << ": " << counters[i].second;
  }
  out << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out << (i == 0 ? "" : ",") << "\n    " << JsonString(gauges[i].first)
        << ": " << JsonNumber(gauges[i].second);
  }
  out << (gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i].second;
    out << (i == 0 ? "" : ",") << "\n    " << JsonString(histograms[i].first)
        << ": {\"count\": " << h.count << ", \"sum\": " << JsonNumber(h.sum)
        << ", \"mean\": " << JsonNumber(h.mean)
        << ", \"stddev\": " << JsonNumber(h.stddev)
        << ", \"min\": " << JsonNumber(h.min)
        << ", \"max\": " << JsonNumber(h.max) << ", \"edges\": [";
    for (std::size_t e = 0; e < h.edges.size(); ++e) {
      out << (e == 0 ? "" : ", ") << JsonNumber(h.edges[e]);
    }
    out << "], \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      out << (b == 0 ? "" : ", ") << h.buckets[b];
    }
    out << "]}";
  }
  out << (histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    out << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    out << name << " = " << JsonNumber(value) << "\n";
  }
  for (const auto& [name, h] : histograms) {
    out << name << " = {count=" << h.count << " mean=" << JsonNumber(h.mean)
        << " stddev=" << JsonNumber(h.stddev) << " min=" << JsonNumber(h.min)
        << " max=" << JsonNumber(h.max) << "}\n";
  }
  return out.str();
}

}  // namespace veritas
