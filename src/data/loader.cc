#include "data/loader.h"

#include "model/database_builder.h"
#include "obs/metrics.h"
#include "util/csv.h"

namespace veritas {

namespace {

bool IsObservationHeader(const CsvRow& row) {
  return row.size() == 3 && row[0] == "source" && row[1] == "item" &&
         row[2] == "value";
}

bool IsTruthHeader(const CsvRow& row) {
  return row.size() == 2 && row[0] == "item" && row[1] == "value";
}

}  // namespace

Result<Database> LoadObservations(const std::string& path) {
  VERITAS_ASSIGN_OR_RETURN(std::vector<CsvRow> rows, ReadCsvFile(path));
  DatabaseBuilder builder;
  std::size_t line = 0;
  for (const CsvRow& row : rows) {
    ++line;
    if (line == 1 && IsObservationHeader(row)) continue;
    if (row.size() != 3) {
      return Status::InvalidArgument(
          path + ": observation row " + std::to_string(line) +
          " must have 3 fields (source,item,value), got " +
          std::to_string(row.size()));
    }
    VERITAS_RETURN_IF_ERROR(builder.AddObservation(row[0], row[1], row[2]));
  }
  return builder.Build();
}

Result<TruthLoadReport> LoadGroundTruth(const std::string& path,
                                        const Database& db) {
  // Counted warnings: truth rows that do not reconcile against the database
  // are normal for silver standards, but in a streaming setting an
  // unknown-item row usually means the truth arrived before the item's
  // observations — expose the counts so that case is diagnosable instead of
  // silently dropped.
  static Counter* unknown_item_counter =
      MetricsRegistry::Global().GetCounter("data.truth_unknown_item");
  static Counter* unknown_claim_counter =
      MetricsRegistry::Global().GetCounter("data.truth_unknown_claim");
  VERITAS_ASSIGN_OR_RETURN(std::vector<CsvRow> rows, ReadCsvFile(path));
  TruthLoadReport report;
  report.truth = GroundTruth(db);
  std::size_t line = 0;
  for (const CsvRow& row : rows) {
    ++line;
    if (line == 1 && IsTruthHeader(row)) continue;
    if (row.size() != 2) {
      return Status::InvalidArgument(path + ": truth row " +
                                     std::to_string(line) +
                                     " must have 2 fields (item,value)");
    }
    const auto item = db.FindItem(row[0]);
    if (!item.ok()) {
      ++report.unknown_item;
      unknown_item_counter->Add(1);
      continue;
    }
    const auto claim = db.FindClaim(item.value(), row[1]);
    if (!claim.ok()) {
      ++report.unknown_claim;
      unknown_claim_counter->Add(1);
      continue;
    }
    VERITAS_RETURN_IF_ERROR(report.truth.Set(db, item.value(), claim.value()));
    ++report.applied;
  }
  return report;
}

Status SaveObservations(const Database& db, const std::string& path) {
  std::vector<CsvRow> rows;
  rows.push_back({"source", "item", "value"});
  for (SourceId j = 0; j < db.num_sources(); ++j) {
    const Source& s = db.source(j);
    for (const Vote& v : s.votes) {
      rows.push_back(
          {s.name, db.item(v.item).name, db.item(v.item).claims[v.claim].value});
    }
  }
  return WriteCsvFile(path, rows);
}

Status SaveGroundTruth(const Database& db, const GroundTruth& truth,
                       const std::string& path) {
  std::vector<CsvRow> rows;
  rows.push_back({"item", "value"});
  for (ItemId i = 0; i < db.num_items(); ++i) {
    const ClaimIndex t = truth.TrueClaim(i);
    if (t == kInvalidClaim) continue;
    rows.push_back({db.item(i).name, db.item(i).claims[t].value});
  }
  return WriteCsvFile(path, rows);
}

}  // namespace veritas
