// Dataset characterization: the Table 10 statistics and the Figure 8
// long-tail coverage analysis.
#ifndef VERITAS_DATA_DATASET_STATS_H_
#define VERITAS_DATA_DATASET_STATS_H_

#include <cstddef>
#include <vector>

#include "data/loader.h"
#include "model/database.h"

namespace veritas {

/// Table 10-style statistics of a database.
struct DatasetStats {
  std::size_t items = 0;
  std::size_t sources = 0;
  std::size_t observations = 0;       ///< |Psi| (votes).
  std::size_t distinct_claims = 0;    ///< sum_i |V_i|.
  std::size_t conflicting_items = 0;  ///< Items with >= 2 claims.
  double density = 0.0;               ///< |Psi| / (|O| * |S|).
  double avg_claims_per_item = 0.0;   ///< kappa.
  double avg_votes_per_item = 0.0;
  /// Ground-truth reconciliation (only populated by the ComputeStats
  /// overload taking a TruthLoadReport). Mismatches are normal for silver
  /// standards but load-bearing for streams: a truth row naming an absent
  /// item usually means the truth arrived before the item's observations,
  /// and must be visible here rather than silently dropped.
  bool has_truth = false;
  std::size_t truth_applied = 0;
  std::size_t truth_unknown_item = 0;   ///< Rows naming absent items.
  std::size_t truth_unknown_claim = 0;  ///< Rows naming unclaimed values.
};

/// Computes Table 10-style statistics.
DatasetStats ComputeStats(const Database& db);

/// Same, folding in the reconciliation counts of a ground-truth load.
DatasetStats ComputeStats(const Database& db, const TruthLoadReport& report);

/// Per-source coverage: fraction of all items each source votes on
/// (the x-axis material of Figure 8).
std::vector<double> SourceCoverages(const Database& db);

/// Fraction of sources whose coverage is strictly below `threshold`
/// (e.g. "90% of sources provide information on fewer than 4% of items"
/// reads CoverageBelow(db, 0.04) >= 0.9).
double CoverageBelow(const Database& db, double threshold);

}  // namespace veritas

#endif  // VERITAS_DATA_DATASET_STATS_H_
