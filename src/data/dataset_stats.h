// Dataset characterization: the Table 10 statistics and the Figure 8
// long-tail coverage analysis.
#ifndef VERITAS_DATA_DATASET_STATS_H_
#define VERITAS_DATA_DATASET_STATS_H_

#include <cstddef>
#include <vector>

#include "model/database.h"

namespace veritas {

/// Table 10-style statistics of a database.
struct DatasetStats {
  std::size_t items = 0;
  std::size_t sources = 0;
  std::size_t observations = 0;       ///< |Psi| (votes).
  std::size_t distinct_claims = 0;    ///< sum_i |V_i|.
  std::size_t conflicting_items = 0;  ///< Items with >= 2 claims.
  double density = 0.0;               ///< |Psi| / (|O| * |S|).
  double avg_claims_per_item = 0.0;   ///< kappa.
  double avg_votes_per_item = 0.0;
};

/// Computes Table 10-style statistics.
DatasetStats ComputeStats(const Database& db);

/// Per-source coverage: fraction of all items each source votes on
/// (the x-axis material of Figure 8).
std::vector<double> SourceCoverages(const Database& db);

/// Fraction of sources whose coverage is strictly below `threshold`
/// (e.g. "90% of sources provide information on fewer than 4% of items"
/// reads CoverageBelow(db, 0.04) >= 0.9).
double CoverageBelow(const Database& db, double threshold);

}  // namespace veritas

#endif  // VERITAS_DATA_DATASET_STATS_H_
