// Claim-value canonicalization — the paper's data-wrangling step for the
// flights snapshots: "We permit slightly different reported values (to a
// maximum difference of 10 minutes) in flight times that might have arisen
// due to slight lag in updates" (§5, Datasets).
//
// Values that parse as numbers (plain numerals or HH:MM clock times) are
// clustered per item with single-linkage at a configurable tolerance; each
// cluster becomes one claim whose representative is the most-voted raw
// value. Non-numeric values keep exact-string identity.
#ifndef VERITAS_DATA_CANONICALIZE_H_
#define VERITAS_DATA_CANONICALIZE_H_

#include <optional>
#include <string>

#include "model/database.h"
#include "util/result.h"

namespace veritas {

/// Canonicalization knobs.
struct CanonicalizeOptions {
  /// Two parsed values belong to the same cluster when a chain of values
  /// with adjacent gaps <= tolerance connects them (single linkage). For
  /// HH:MM values the unit is minutes; for plain numbers it is the raw
  /// numeric difference. The paper's flights preprocessing uses 10.
  double numeric_tolerance = 10.0;
  /// Parse "HH:MM" / "H:MM" clock strings as minutes since midnight.
  bool parse_clock_times = true;
};

/// Parses a value as a number: plain numerals ("-3", "42.5") always;
/// "HH:MM" clock times (as minutes) when `parse_clock_times`. Returns
/// nullopt for anything else.
std::optional<double> ParseNumericValue(const std::string& value,
                                        bool parse_clock_times);

/// Per-database canonicalization report.
struct CanonicalizeReport {
  Database db;                  ///< The rebuilt database.
  std::size_t merged_claims = 0;  ///< Claims removed by merging.
  std::size_t numeric_items = 0;  ///< Items with >= 1 parsed numeric value.
};

/// Rebuilds `db` with per-item numeric claims merged under `options`.
/// Sources voting for merged claims end up voting for the cluster
/// representative; if a source voted for two values that merge, the votes
/// collapse into one.
Result<CanonicalizeReport> CanonicalizeValues(
    const Database& db, const CanonicalizeOptions& options = {});

}  // namespace veritas

#endif  // VERITAS_DATA_CANONICALIZE_H_
