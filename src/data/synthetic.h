// Synthetic dataset generation.
//
// The paper evaluates on proprietary snapshots (Books from abebooks.com,
// Flights from [21], Population from Wikipedia edit histories) that are not
// redistributable. Section B.2 of the paper itself defines a synthetic
// generator whose defaults "correspond to the characteristics of real
// datasets": source accuracies A(s) ~ N(a_mean, a_sd) and a density d with
// which each source votes on each item. We reproduce that generator
// (GenerateDense) and add a long-tail variant (GenerateLongTail) whose
// power-law source coverage matches the Books/Population characteristics of
// §B.1/Figure 8 (">90% of sources provide information on fewer than 4% of
// data items").
//
// Claims per item are capped (default 2) exactly as in the paper's
// preprocessing ("we consider only those flight and population data items
// that have up to two contesting values"; "the top two author sets per
// book").
#ifndef VERITAS_DATA_SYNTHETIC_H_
#define VERITAS_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/database.h"
#include "model/ground_truth.h"
#include "model/streaming_database.h"
#include "util/result.h"

namespace veritas {

/// A generated database with its (complete, for generated claims) ground
/// truth and the true source accuracies used during generation.
struct SyntheticDataset {
  Database db;
  GroundTruth truth;
  std::vector<double> true_accuracies;
  /// Timestamped observation stream (only when `emit_stream` is set in the
  /// config): every observation the generator emitted, in emission order,
  /// with strictly increasing timestamps in [0, 1). Replaying it in
  /// timestamp order through a DatabaseBuilder / StreamingDatabase
  /// reproduces `db` with identical item/source/claim ids, because the
  /// stamping is order-preserving and builder ids follow first appearance.
  std::vector<StreamObservation> stream;
  /// Ground-truth disclosures with their own (uniform, unordered relative to
  /// the observations) timestamps — some truths arrive before their item's
  /// first observation, which is exactly the deferral case streaming
  /// consumers must handle.
  std::vector<StreamTruth> truth_stream;
};

/// Parameters of the dense generator (§B.2: few sources voting on most
/// items, e.g. the flights datasets).
struct DenseConfig {
  std::size_t num_items = 1000;
  std::size_t num_sources = 38;
  /// Probability that a source votes on an item (the paper's d = 0.4).
  double density = 0.4;
  /// Source accuracy distribution A(s) ~ N(mean, sd), clamped to [0.05,0.99].
  double accuracy_mean = 0.8;
  double accuracy_sd = 0.1;
  /// Distinct false values available per item; total claims per item is at
  /// most max_false_claims + 1.
  std::size_t max_false_claims = 1;
  /// Fraction of sources that copy another (independent) source instead of
  /// observing independently. Copying is the dominant error-correlation
  /// mechanism in the paper's real datasets (see Dong et al. [7], whose
  /// flights/books snapshots the paper reuses); it produces the
  /// confidently-wrong fused items that make feedback valuable. 0 disables.
  double copier_fraction = 0.0;
  /// Force at least one vote for the true value on every item, so ground
  /// truth is always expressible as a claim. Off by default: with realistic
  /// densities the true claim almost always appears anyway, and leaving rare
  /// truth-free items in mirrors real silver standards.
  bool ensure_true_claim = false;
  std::uint64_t seed = 42;
  /// Record the timestamped observation/truth streams in the output (see
  /// SyntheticDataset::stream). Off by default; turning it on does not
  /// change the generated database — timestamps come from a separate RNG.
  bool emit_stream = false;
  /// Fraction of observations re-emitted at the tail of the stream as late
  /// corrective re-observations: the source repeats its vote with the item's
  /// *true* value (a revision when it voted falsely, a duplicate otherwise).
  /// Applied to the database too (last write wins), so > 0 changes the
  /// generated data. 0 disables.
  double revision_fraction = 0.0;
};

/// Generates a dense dataset (the paper's §B.2 generator).
SyntheticDataset GenerateDense(const DenseConfig& config);

/// Parameters of the long-tail generator (Books-/Population-like shapes,
/// §B.1/Figure 8): per-source coverage follows a Pareto distribution, so a
/// few sources cover many items and most cover almost none.
struct LongTailConfig {
  std::size_t num_items = 1263;
  std::size_t num_sources = 894;
  /// Average number of votes each item receives (sets the total vote
  /// budget). Books ~ 19, Population ~ 1.15.
  double avg_votes_per_item = 19.0;
  /// Pareto tail exponent of source coverage; smaller = heavier tail.
  double pareto_alpha = 0.7;
  /// Cap on the fraction of items one source may cover.
  double max_coverage_fraction = 0.5;
  double accuracy_mean = 0.8;
  double accuracy_sd = 0.1;
  std::size_t max_false_claims = 1;
  /// See DenseConfig::copier_fraction.
  double copier_fraction = 0.0;
  bool ensure_true_claim = false;
  std::uint64_t seed = 42;
  /// See DenseConfig::emit_stream / revision_fraction.
  bool emit_stream = false;
  double revision_fraction = 0.0;
};

/// Generates a long-tail dataset.
SyntheticDataset GenerateLongTail(const LongTailConfig& config);

/// A declarative generator request: the shape name selects the generator,
/// the common fields size it, and `params` carries generator-specific knobs
/// as strings (so benchmark drivers and CI configs can pass them through
/// without compiling against each config struct). Unknown param keys are
/// rejected — a typo must not silently fall back to a default.
struct DatasetSpec {
  /// Human-friendly tag used in logs / bench record names.
  std::string name = "synthetic";
  /// Generator: "dense", "longtail", or "scaled_longtail".
  std::string shape = "scaled_longtail";
  std::size_t num_items = 100000;
  std::size_t num_sources = 10000;
  std::uint64_t seed = 42;
  /// Generator-specific parameters, e.g. {{"hot_items", "512"}}.
  /// Keys per shape are documented at GenerateFromSpec.
  std::unordered_map<std::string, std::string> params;
};

/// Metadata the generator reports back about what it actually built
/// (requested sizes are clamped/derived in places; benchmarks record the
/// achieved shape, not the request).
struct GenerationReport {
  std::string generator;
  std::string dataset_name;
  std::size_t num_items = 0;
  std::size_t num_sources = 0;
  std::size_t num_observations = 0;
  /// Items carrying more than one claim (the candidate set of a strategy
  /// scan that excludes singletons).
  std::size_t contested_items = 0;
  /// Head sources (scaled_longtail only): the shared-coverage sources that
  /// couple items across the whole database.
  std::size_t head_sources = 0;
  /// Fraction of items covered by the heaviest single source.
  double max_source_coverage = 0.0;
  /// Free-form diagnostics.
  std::string notes;
};

/// Builds a dataset from a declarative spec. Shapes and their params:
///   "dense"     — GenerateDense. Params: density, accuracy_mean,
///                 accuracy_sd, max_false_claims, copier_fraction,
///                 ensure_true_claim, revision_fraction, emit_stream.
///   "longtail"  — GenerateLongTail. Params: avg_votes_per_item,
///                 pareto_alpha, max_coverage_fraction, plus the dense set
///                 minus density.
///   "scaled_longtail" — the million-item scale-out shape (DESIGN.md §5h):
///                 a few head sources jointly cover every item (coupling
///                 all items through shared sources), every tail item gets
///                 `base_votes` agreeing votes (zero entropy, excluded from
///                 candidate scans), and `hot_items` contested items carry
///                 two claims whose fused entropy ramps continuously from
///                 ~ln 2 down to ~0 (per-item contester sources with
///                 controlled degrees set the log-odds gap). Built without
///                 any per-item database snapshotting, so it scales to 1M+
///                 items. Params: head_sources (8), base_votes (2),
///                 hot_items (512), contester_degree (30), max_hot_logit
///                 (1.0).
/// Unknown shapes or param keys, and invalid values, return InvalidArgument.
Result<SyntheticDataset> GenerateFromSpec(const DatasetSpec& spec,
                                          GenerationReport* report = nullptr);

/// Name of the true value of item i ("T<i>") — the value the generator's
/// accurate votes use. False values are "F<i>_<k>".
std::string SyntheticTrueValue(std::size_t item_index);
std::string SyntheticFalseValue(std::size_t item_index, std::size_t k);

}  // namespace veritas

#endif  // VERITAS_DATA_SYNTHETIC_H_
