// The paper's running example (Table 1): four sources providing directors
// for six animation movies. Used by the quickstart example and by the golden
// tests that replay the worked numbers of Tables 3-9.
#ifndef VERITAS_DATA_EXAMPLE_DATA_H_
#define VERITAS_DATA_EXAMPLE_DATA_H_

#include "fusion/fusion_model.h"
#include "model/database.h"
#include "model/ground_truth.h"

namespace veritas {

/// Builds the Table 1 database. Item order matches the paper (O1..O6 =
/// Zootopia, Kung Fu Panda, Inside Out, Finding Dory, Minions, Rio) and the
/// claim order per item matches the order the paper lists probabilities in
/// (Table 3).
Database MakeMovieDatabase();

/// Fusion options that reproduce the paper's worked numbers (Table 3):
/// the paper ran the §3 model for a fixed threshold of 5 iterations.
/// With these options our AccuFusion yields 0.986/0.999/0.925/0.986 for the
/// paper's 0.985/0.999/0.921/0.985.
FusionOptions PaperExampleFusionOptions();

/// The starred (correct) claims of Table 1: Zootopia=Howard,
/// Kung Fu Panda=Stevenson, Inside Out=Docter, Finding Dory=Stanton,
/// Minions=Coffin, Rio=Saldanha.
GroundTruth MakeMovieGroundTruth(const Database& db);

}  // namespace veritas

#endif  // VERITAS_DATA_EXAMPLE_DATA_H_
