// Dataset I/O: plug real datasets into Veritas.
//
// Observation files are CSV with rows `source,item,value` (header optional —
// a first row exactly equal to "source,item,value" is skipped). Ground-truth
// files are CSV with rows `item,value`. Lines starting with '#' and blank
// lines are ignored. This is the layout the paper's Books/Flights/Population
// snapshots are conventionally distributed in (triple files plus a
// gold/silver standard).
#ifndef VERITAS_DATA_LOADER_H_
#define VERITAS_DATA_LOADER_H_

#include <string>

#include "model/database.h"
#include "model/ground_truth.h"
#include "util/result.h"

namespace veritas {

/// Statistics of a ground-truth load (silver standards are partial and may
/// reference values no source provided).
struct TruthLoadReport {
  GroundTruth truth;
  std::size_t applied = 0;        ///< Rows successfully applied.
  std::size_t unknown_item = 0;   ///< Rows naming an item not in the db.
  std::size_t unknown_claim = 0;  ///< Rows naming a value no source claims.
};

/// Loads a database from an observation CSV file.
Result<Database> LoadObservations(const std::string& path);

/// Loads ground truth for `db` from a truth CSV file. Rows that do not match
/// the database are counted, not fatal (silver standards are noisy).
Result<TruthLoadReport> LoadGroundTruth(const std::string& path,
                                        const Database& db);

/// Writes the observations of `db` as a CSV file (round-trips with
/// LoadObservations).
Status SaveObservations(const Database& db, const std::string& path);

/// Writes known truths as a CSV file (round-trips with LoadGroundTruth).
Status SaveGroundTruth(const Database& db, const GroundTruth& truth,
                       const std::string& path);

}  // namespace veritas

#endif  // VERITAS_DATA_LOADER_H_
