#include "data/canonicalize.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "model/database_builder.h"

namespace veritas {

namespace {

bool IsDigits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::optional<double> ParseClockTime(const std::string& value) {
  const std::size_t colon = value.find(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= value.size()) {
    return std::nullopt;
  }
  const std::string hours = value.substr(0, colon);
  const std::string minutes = value.substr(colon + 1);
  if (!IsDigits(hours) || !IsDigits(minutes) || minutes.size() != 2 ||
      hours.size() > 2) {
    return std::nullopt;
  }
  const int h = std::atoi(hours.c_str());
  const int m = std::atoi(minutes.c_str());
  if (h > 23 || m > 59) return std::nullopt;
  return static_cast<double>(h * 60 + m);
}

std::optional<double> ParsePlainNumber(const std::string& value) {
  if (value.empty()) return std::nullopt;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size()) return std::nullopt;
  return parsed;
}

}  // namespace

std::optional<double> ParseNumericValue(const std::string& value,
                                        bool parse_clock_times) {
  if (parse_clock_times) {
    const auto clock = ParseClockTime(value);
    if (clock.has_value()) return clock;
  }
  return ParsePlainNumber(value);
}

Result<CanonicalizeReport> CanonicalizeValues(
    const Database& db, const CanonicalizeOptions& options) {
  if (options.numeric_tolerance < 0.0) {
    return Status::InvalidArgument("numeric_tolerance must be >= 0");
  }
  DatabaseBuilder builder;
  CanonicalizeReport report;

  for (ItemId i = 0; i < db.num_items(); ++i) {
    const Item& item = db.item(i);
    // Partition claims into numeric (parsed) and literal.
    struct NumericClaim {
      double parsed;
      ClaimIndex claim;
    };
    std::vector<NumericClaim> numeric;
    for (ClaimIndex k = 0; k < item.claims.size(); ++k) {
      const auto parsed = ParseNumericValue(item.claims[k].value,
                                            options.parse_clock_times);
      if (parsed.has_value()) {
        numeric.push_back(NumericClaim{*parsed, k});
      }
    }
    if (!numeric.empty()) ++report.numeric_items;

    // Single-linkage clustering of numeric claims: sort, split where the
    // adjacent gap exceeds the tolerance.
    std::sort(numeric.begin(), numeric.end(),
              [](const NumericClaim& a, const NumericClaim& b) {
                return a.parsed < b.parsed;
              });
    // canonical_of[k] = representative value for claim k.
    std::vector<std::string> canonical_of(item.claims.size());
    for (ClaimIndex k = 0; k < item.claims.size(); ++k) {
      canonical_of[k] = item.claims[k].value;  // Default: itself.
    }
    std::size_t start = 0;
    while (start < numeric.size()) {
      std::size_t end = start + 1;
      while (end < numeric.size() &&
             numeric[end].parsed - numeric[end - 1].parsed <=
                 options.numeric_tolerance) {
        ++end;
      }
      if (end - start > 1) {
        // Representative: the most-voted raw value in the cluster
        // (ties: the smallest parsed value).
        std::size_t best = start;
        for (std::size_t c = start; c < end; ++c) {
          if (item.claims[numeric[c].claim].sources.size() >
              item.claims[numeric[best].claim].sources.size()) {
            best = c;
          }
        }
        const std::string& representative =
            item.claims[numeric[best].claim].value;
        for (std::size_t c = start; c < end; ++c) {
          canonical_of[numeric[c].claim] = representative;
        }
        report.merged_claims += (end - start) - 1;
      }
      start = end;
    }

    // Re-emit observations under canonical values. A source that voted for
    // two raw values mapping to the same canonical value collapses to one
    // vote (AddObservation is idempotent on identical values, and two
    // different canonical values from one source cannot happen since the
    // source voted once per item).
    for (const ItemVote& vote : db.item_votes(i)) {
      VERITAS_RETURN_IF_ERROR(builder.AddObservation(
          db.source(vote.source).name, item.name, canonical_of[vote.claim]));
    }
  }
  report.db = builder.Build();
  return report;
}

}  // namespace veritas
