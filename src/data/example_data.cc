#include "data/example_data.h"

#include <cassert>

#include "model/database_builder.h"

namespace veritas {

Database MakeMovieDatabase() {
  DatabaseBuilder builder;
  // Observations in an order that yields the paper's claim numbering: the
  // first-listed claim of each item in Table 3 is claim 0.
  struct Row {
    const char* source;
    const char* item;
    const char* value;
  };
  static constexpr Row kRows[] = {
      // O1 Zootopia: claims Howard (S2), Spencer (S3, S4).
      {"S2", "Zootopia", "Howard"},
      {"S3", "Zootopia", "Spencer"},
      {"S4", "Zootopia", "Spencer"},
      // O2 Kung Fu Panda: claims Stevenson (S1), Nelson (S3).
      {"S1", "Kung Fu Panda", "Stevenson"},
      {"S3", "Kung Fu Panda", "Nelson"},
      // O3 Inside Out: claims Docter (S3), leFauve (S2) — Table 3 lists
      // Docter first.
      {"S3", "Inside Out", "Docter"},
      {"S2", "Inside Out", "leFauve"},
      // O4 Finding Dory: single claim Stanton (S4).
      {"S4", "Finding Dory", "Stanton"},
      // O5 Minions: claims Coffin (S1), Renaud (S2).
      {"S1", "Minions", "Coffin"},
      {"S2", "Minions", "Renaud"},
      // O6 Rio: claims Saldanha (S3), Jones (S1) — Table 3 lists Saldanha
      // first.
      {"S3", "Rio", "Saldanha"},
      {"S1", "Rio", "Jones"},
  };
  for (const Row& row : kRows) {
    const Status st = builder.AddObservation(row.source, row.item, row.value);
    assert(st.ok());
    (void)st;
  }
  return builder.Build();
}

FusionOptions PaperExampleFusionOptions() {
  FusionOptions opts;
  opts.max_iterations = 5;
  return opts;
}

GroundTruth MakeMovieGroundTruth(const Database& db) {
  GroundTruth truth(db);
  struct Entry {
    const char* item;
    const char* value;
  };
  static constexpr Entry kTruths[] = {
      {"Zootopia", "Howard"},     {"Kung Fu Panda", "Stevenson"},
      {"Inside Out", "Docter"},   {"Finding Dory", "Stanton"},
      {"Minions", "Coffin"},      {"Rio", "Saldanha"},
  };
  for (const Entry& e : kTruths) {
    const Status st = truth.SetByValue(db, e.item, e.value);
    assert(st.ok());
    (void)st;
  }
  return truth;
}

}  // namespace veritas
