#include "data/dataset_stats.h"

namespace veritas {

DatasetStats ComputeStats(const Database& db) {
  DatasetStats s;
  s.items = db.num_items();
  s.sources = db.num_sources();
  s.observations = db.num_observations();
  s.distinct_claims = db.num_claims();
  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (db.HasConflict(i)) ++s.conflicting_items;
  }
  if (s.items > 0 && s.sources > 0) {
    s.density = static_cast<double>(s.observations) /
                (static_cast<double>(s.items) * static_cast<double>(s.sources));
  }
  if (s.items > 0) {
    s.avg_claims_per_item =
        static_cast<double>(s.distinct_claims) / static_cast<double>(s.items);
    s.avg_votes_per_item =
        static_cast<double>(s.observations) / static_cast<double>(s.items);
  }
  return s;
}

DatasetStats ComputeStats(const Database& db, const TruthLoadReport& report) {
  DatasetStats s = ComputeStats(db);
  s.has_truth = true;
  s.truth_applied = report.applied;
  s.truth_unknown_item = report.unknown_item;
  s.truth_unknown_claim = report.unknown_claim;
  return s;
}

std::vector<double> SourceCoverages(const Database& db) {
  std::vector<double> out(db.num_sources(), 0.0);
  if (db.num_items() == 0) return out;
  for (SourceId j = 0; j < db.num_sources(); ++j) {
    out[j] = static_cast<double>(db.source_degree(j)) /
             static_cast<double>(db.num_items());
  }
  return out;
}

double CoverageBelow(const Database& db, double threshold) {
  if (db.num_sources() == 0) return 0.0;
  std::size_t below = 0;
  for (double c : SourceCoverages(db)) {
    if (c < threshold) ++below;
  }
  return static_cast<double>(below) / static_cast<double>(db.num_sources());
}

}  // namespace veritas
