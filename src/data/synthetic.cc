#include "data/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <set>
#include <unordered_map>

#include "model/database_builder.h"
#include "util/math.h"
#include "util/rng.h"

namespace veritas {

namespace {

std::string ItemName(std::size_t i) { return "item" + std::to_string(i); }
std::string SourceName(std::size_t j) { return "src" + std::to_string(j); }

// Accuracies drawn from N(mean, sd), clamped away from 0/1 so the generated
// data stays informative.
std::vector<double> DrawAccuracies(std::size_t n, double mean, double sd,
                                   Rng* rng) {
  std::vector<double> out(n);
  for (double& a : out) a = Clamp(rng->Normal(mean, sd), 0.05, 0.99);
  return out;
}

// Draws the value an independent source reports for an item: the true value
// with probability `accuracy`, otherwise a uniformly chosen false value.
std::string DrawValue(std::size_t item, double accuracy,
                      std::size_t max_false_claims, Rng* rng) {
  if (max_false_claims == 0 || rng->Bernoulli(accuracy)) {
    return SyntheticTrueValue(item);
  }
  return SyntheticFalseValue(item, rng->UniformIndex(max_false_claims));
}

// Assignment of copier sources to independent parents. Copiers replicate
// their parent's claims wherever the parent voted — the error-correlation
// mechanism behind the confidently-wrong items of real fused data.
struct CopyPlan {
  std::size_t num_independent = 0;
  // parent[j] is the parent of source j (only meaningful for copiers,
  // j >= num_independent).
  std::vector<std::size_t> parent;
  // Recorded votes (item -> value) of every source that acts as a parent.
  std::unordered_map<std::size_t,
                     std::unordered_map<std::size_t, std::string>>
      parent_votes;

  bool IsCopier(std::size_t source) const { return source >= num_independent; }
};

CopyPlan MakeCopyPlan(std::size_t num_sources, double copier_fraction,
                      Rng* rng) {
  CopyPlan plan;
  std::size_t copiers = static_cast<std::size_t>(
      std::floor(copier_fraction * static_cast<double>(num_sources)));
  copiers = std::min(copiers, num_sources - 1);  // Keep >= 1 independent.
  plan.num_independent = num_sources - copiers;
  plan.parent.assign(num_sources, 0);
  for (std::size_t j = plan.num_independent; j < num_sources; ++j) {
    plan.parent[j] = rng->UniformIndex(plan.num_independent);
    plan.parent_votes.emplace(plan.parent[j],
                              std::unordered_map<std::size_t, std::string>());
  }
  return plan;
}

// Emits one vote for (source, item): copiers replay the parent's value when
// available, everyone else draws independently. Parents record their votes.
// When `log` is non-null every accepted observation is recorded in emission
// order (timestamps are stamped later, see StampStream).
void EmitVote(DatabaseBuilder* builder, CopyPlan* plan, std::size_t source,
              std::size_t item, double accuracy,
              std::size_t max_false_claims, Rng* rng,
              std::vector<StreamObservation>* log) {
  std::string value;
  bool copied = false;
  if (plan->IsCopier(source)) {
    const auto parent_it = plan->parent_votes.find(plan->parent[source]);
    if (parent_it != plan->parent_votes.end()) {
      const auto vote_it = parent_it->second.find(item);
      if (vote_it != parent_it->second.end()) {
        value = vote_it->second;
        copied = true;
      }
    }
  }
  if (!copied) {
    value = DrawValue(item, accuracy, max_false_claims, rng);
  }
  auto recorder = plan->parent_votes.find(source);
  if (recorder != plan->parent_votes.end()) {
    recorder->second.emplace(item, value);
  }
  std::string source_name = SourceName(source);
  std::string item_name = ItemName(item);
  const Status st = builder->AddObservation(source_name, item_name, value);
  assert(st.ok());
  (void)st;
  if (log != nullptr) {
    log->push_back(StreamObservation{std::move(source_name),
                                     std::move(item_name), std::move(value),
                                     0.0});
  }
}

// Ensures every item exists in the builder with at least one vote, and
// (optionally) that the true value appears among the claims.
void PatchCoverage(DatabaseBuilder* builder, std::size_t num_items,
                   std::size_t num_sources, bool ensure_true_claim, Rng* rng,
                   std::vector<StreamObservation>* log) {
  const Database snapshot = builder->Build();
  for (std::size_t i = 0; i < num_items; ++i) {
    const auto found = snapshot.FindItem(ItemName(i));
    bool needs_true = ensure_true_claim;
    if (found.ok()) {
      if (needs_true) {
        needs_true =
            !snapshot.FindClaim(found.value(), SyntheticTrueValue(i)).ok();
      }
      if (!needs_true) continue;
    }
    // Give the item a truthful vote from a random source (retry a few times
    // in case that source already voted falsely on the item — the builder's
    // last-write-wins semantics would silently overwrite that vote and
    // change the generated dataset, so probe first).
    for (int attempt = 0; attempt < 16; ++attempt) {
      const std::size_t j = rng->UniformIndex(num_sources);
      if (builder->WouldRevise(SourceName(j), ItemName(i),
                               SyntheticTrueValue(i))) {
        continue;
      }
      std::string source_name = SourceName(j);
      std::string item_name = ItemName(i);
      std::string value = SyntheticTrueValue(i);
      const Status st = builder->AddObservation(source_name, item_name, value);
      assert(st.ok());
      (void)st;
      if (log != nullptr) {
        log->push_back(StreamObservation{std::move(source_name),
                                         std::move(item_name),
                                         std::move(value), 0.0});
      }
      break;
    }
  }
}

// Builds the ground truth: every item whose true value appears among its
// claims gets that claim marked true.
GroundTruth BuildTruth(const Database& db) {
  GroundTruth truth(db);
  for (ItemId i = 0; i < db.num_items(); ++i) {
    // Generated item names are "item<k>"; recover k to form the true value.
    const std::string& name = db.item(i).name;
    const std::size_t index = std::stoul(name.substr(4));
    const auto claim = db.FindClaim(i, SyntheticTrueValue(index));
    if (claim.ok()) {
      const Status st = truth.Set(db, i, claim.value());
      assert(st.ok());
      (void)st;
    }
  }
  return truth;
}

// Item index k from a generated item name "item<k>".
std::size_t ItemIndexOf(const std::string& name) {
  return std::stoul(name.substr(4));
}

// Appends late corrective re-observations to the log *and* the builder:
// randomly chosen earlier observations are repeated with the item's true
// value — a last-write-wins revision when the original vote was false, an
// idempotent duplicate otherwise. Draws come from the stream RNG so the
// fraction-0 path leaves the generated database untouched.
void ApplyRevisions(DatabaseBuilder* builder,
                    std::vector<StreamObservation>* log,
                    double revision_fraction, Rng* stream_rng) {
  if (revision_fraction <= 0.0 || log->empty()) return;
  const std::size_t original = log->size();
  const std::size_t count = static_cast<std::size_t>(
      std::floor(revision_fraction * static_cast<double>(original)));
  for (std::size_t r = 0; r < count; ++r) {
    const StreamObservation& past = (*log)[stream_rng->UniformIndex(original)];
    StreamObservation corrected{past.source, past.item,
                                SyntheticTrueValue(ItemIndexOf(past.item)),
                                0.0};
    const Status st = builder->AddObservation(corrected.source, corrected.item,
                                              corrected.value);
    assert(st.ok());
    (void)st;
    log->push_back(std::move(corrected));
  }
}

// Stamps strictly increasing timestamps t_k = (k + 0.5 u_k) / N onto the log
// (u_k uniform in [0,1)), so sorting by timestamp reproduces emission order
// exactly — replaying the stream builds a database with identical ids. The
// jitter comes from a *separate* RNG so stamping never perturbs the
// generator's own draw sequence.
void StampStream(std::vector<StreamObservation>* log, Rng* stream_rng) {
  const double n = static_cast<double>(log->size());
  for (std::size_t k = 0; k < log->size(); ++k) {
    (*log)[k].timestamp =
        (static_cast<double>(k) + 0.5 * stream_rng->Uniform()) / n;
  }
}

// Truth disclosures for every item whose true claim exists, each at an
// independent uniform timestamp — deliberately uncorrelated with the item's
// first observation so some truths precede their items in the stream.
std::vector<StreamTruth> BuildTruthStream(const Database& db,
                                          const GroundTruth& truth,
                                          Rng* stream_rng) {
  std::vector<StreamTruth> out;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (!truth.Knows(i)) continue;
    out.push_back(StreamTruth{db.item(i).name,
                              SyntheticTrueValue(ItemIndexOf(db.item(i).name)),
                              stream_rng->Uniform()});
  }
  return out;
}

// A copier's effective accuracy is (mostly) its parent's: report that in
// true_accuracies so tests comparing estimated vs true accuracies stay
// meaningful.
void InheritCopierAccuracies(const CopyPlan& plan,
                             std::vector<double>* accuracies) {
  for (std::size_t j = plan.num_independent; j < accuracies->size(); ++j) {
    (*accuracies)[j] = (*accuracies)[plan.parent[j]];
  }
}

// ---------------------------------------------------------------------------
// Spec-driven generation.
// ---------------------------------------------------------------------------

// Reads generator params from the spec's string map, tracking which keys were
// consumed so a typo'd key is an error instead of a silent default.
class ParamReader {
 public:
  explicit ParamReader(
      const std::unordered_map<std::string, std::string>& params)
      : params_(params) {}

  Result<double> GetDouble(const std::string& key, double fallback) {
    const auto it = params_.find(key);
    if (it == params_.end()) return fallback;
    consumed_.insert(key);
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
      return Status::InvalidArgument("param " + key + ": not a number: " +
                                     it->second);
    }
    return v;
  }

  Result<std::size_t> GetSize(const std::string& key, std::size_t fallback) {
    VERITAS_ASSIGN_OR_RETURN(double v,
                             GetDouble(key, static_cast<double>(fallback)));
    if (v < 0.0 || v != std::floor(v)) {
      return Status::InvalidArgument("param " + key +
                                     ": not a non-negative integer");
    }
    return static_cast<std::size_t>(v);
  }

  Result<bool> GetBool(const std::string& key, bool fallback) {
    const auto it = params_.find(key);
    if (it == params_.end()) return fallback;
    consumed_.insert(key);
    if (it->second == "true" || it->second == "1") return true;
    if (it->second == "false" || it->second == "0") return false;
    return Status::InvalidArgument("param " + key + ": not a bool: " +
                                   it->second);
  }

  /// InvalidArgument naming the first unconsumed key, OkStatus when all keys
  /// were read by the generator.
  Status CheckAllConsumed() const {
    for (const auto& [key, value] : params_) {
      if (consumed_.count(key) == 0) {
        return Status::InvalidArgument("unknown generator param: " + key);
      }
    }
    return Status::OK();
  }

 private:
  const std::unordered_map<std::string, std::string>& params_;
  std::set<std::string> consumed_;
};

// Shared dense/longtail knobs (accuracy distribution, claims, stream).
template <typename Config>
Status ReadCommonParams(ParamReader* reader, Config* config) {
  VERITAS_ASSIGN_OR_RETURN(
      config->accuracy_mean,
      reader->GetDouble("accuracy_mean", config->accuracy_mean));
  VERITAS_ASSIGN_OR_RETURN(config->accuracy_sd,
                           reader->GetDouble("accuracy_sd",
                                             config->accuracy_sd));
  VERITAS_ASSIGN_OR_RETURN(
      config->max_false_claims,
      reader->GetSize("max_false_claims", config->max_false_claims));
  VERITAS_ASSIGN_OR_RETURN(
      config->copier_fraction,
      reader->GetDouble("copier_fraction", config->copier_fraction));
  VERITAS_ASSIGN_OR_RETURN(
      config->ensure_true_claim,
      reader->GetBool("ensure_true_claim", config->ensure_true_claim));
  VERITAS_ASSIGN_OR_RETURN(config->emit_stream,
                           reader->GetBool("emit_stream",
                                           config->emit_stream));
  VERITAS_ASSIGN_OR_RETURN(
      config->revision_fraction,
      reader->GetDouble("revision_fraction", config->revision_fraction));
  return Status::OK();
}

// Fills the report fields every generator shares by scanning the built
// database once: vote totals, contested-item count, heaviest coverage.
void FillReportFromDatabase(const Database& db, GenerationReport* report) {
  if (report == nullptr) return;
  report->num_items = db.num_items();
  report->num_sources = db.num_sources();
  std::size_t votes = 0;
  std::size_t contested = 0;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    votes += db.item_votes(i).size();
    if (db.num_claims(i) > 1) ++contested;
  }
  report->num_observations = votes;
  report->contested_items = contested;
  std::size_t max_degree = 0;
  for (SourceId s = 0; s < db.num_sources(); ++s) {
    max_degree = std::max(max_degree, db.source_degree(s));
  }
  report->max_source_coverage =
      db.num_items() == 0
          ? 0.0
          : static_cast<double>(max_degree) /
                static_cast<double>(db.num_items());
}

// True accuracies measured from the built database: the fraction of a
// source's votes that endorse the item's true claim (exact, and robust to
// the construction's last-write-wins overwrites).
std::vector<double> MeasureAccuracies(const Database& db,
                                      const GroundTruth& truth) {
  std::vector<double> hits(db.num_sources(), 0.0);
  std::vector<double> totals(db.num_sources(), 0.0);
  for (ItemId i = 0; i < db.num_items(); ++i) {
    const ClaimIndex t = truth.TrueClaim(i);
    for (const ItemVote& iv : db.item_votes(i)) {
      totals[iv.source] += 1.0;
      if (t != kInvalidClaim && iv.claim == t) hits[iv.source] += 1.0;
    }
  }
  std::vector<double> out(db.num_sources(), 1.0);
  for (SourceId s = 0; s < db.num_sources(); ++s) {
    if (totals[s] > 0.0) out[s] = hits[s] / totals[s];
  }
  return out;
}

// The million-item scale-out shape (DESIGN.md §5h). Structure:
//  * `head_sources` heads: head j votes the true value on every item with
//    i % heads == j, so the heads jointly cover 100% of items and any
//    lookahead ripple through a head's accuracy touches the whole database
//    — the coupling the shard layer's confinement pays for not walking.
//  * every non-hot item additionally gets `base_votes` agreeing true votes
//    from hash-assigned tail sources: single-claim items, zero entropy,
//    excluded from candidate scans.
//  * `hot_items` evenly strided items are contested: all heads vote on them
//    in an exactly balanced true/false split (head accuracies are clamped
//    equal, so the heads cancel), plus one dedicated true-contester and one
//    false-contester source whose *degrees* are chosen so the fused
//    log-odds gap ramps linearly over (0, max_hot_logit] across the hot
//    set. That yields a continuous spectrum of item entropies from ~ln 2
//    down, with gaps far wider than the cross-shard ripple a confined
//    estimate drops (so sharded selections match). The default ramp is
//    shallow enough that no hot item's branch-and-bound gain bound falls
//    below the best gains — every candidate pays its full lookahead, which
//    is the regime where scan cost is the bottleneck and sharding is
//    measured; steeper ramps (larger max_hot_logit) hand most of the work
//    to the pruner instead.
// No per-item database snapshots anywhere: construction is a fixed number
// of streaming passes, and coverage/true-claim presence hold by design.
struct ScaledLongTailConfig {
  std::size_t num_items = 100000;
  std::size_t num_sources = 10000;
  std::size_t head_sources = 8;
  std::size_t base_votes = 2;
  std::size_t hot_items = 512;
  std::size_t contester_degree = 30;
  double max_hot_logit = 0.4;
  std::uint64_t seed = 42;
  bool emit_stream = false;
};

Result<SyntheticDataset> GenerateScaledLongTail(
    const ScaledLongTailConfig& config, GenerationReport* report) {
  const std::size_t n = config.num_items;
  const std::size_t m = config.num_sources;
  const std::size_t heads = config.head_sources;
  if (n < 16) {
    return Status::InvalidArgument("scaled_longtail: num_items must be >= 16");
  }
  if (heads < 2 || heads % 2 != 0) {
    return Status::InvalidArgument(
        "scaled_longtail: head_sources must be even and >= 2");
  }
  if (config.base_votes < 1) {
    return Status::InvalidArgument("scaled_longtail: base_votes must be >= 1");
  }
  if (config.contester_degree < 2) {
    return Status::InvalidArgument(
        "scaled_longtail: contester_degree must be >= 2");
  }
  if (config.max_hot_logit <= 0.0) {
    return Status::InvalidArgument(
        "scaled_longtail: max_hot_logit must be > 0");
  }
  if (m < heads + 3) {
    return Status::InvalidArgument(
        "scaled_longtail: num_sources must exceed head_sources + 2");
  }
  // Contested items: capped so the tail stays the bulk of the database and
  // every hot item gets its two dedicated contester sources with at least
  // one source left for base votes.
  std::size_t hot = std::min(config.hot_items, n / 2);
  hot = std::min(hot, (m - heads - 1) / 2);
  hot = std::max<std::size_t>(hot, 1);
  const std::size_t stride = n / hot;  // >= 2 by the n/2 cap.
  const auto is_hot = [&](std::size_t i) {
    return i % stride == 0 && i / stride < hot;
  };
  const auto hot_id = [&](std::size_t r) { return r * stride; };
  const std::size_t contester_base = heads;          // [heads, heads + 2*hot)
  const std::size_t tail_base = heads + 2 * hot;     // [tail_base, m)
  const std::size_t num_tail = m - tail_base;

  Rng rng(config.seed);
  Rng stream_rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<StreamObservation> log;
  std::vector<StreamObservation>* log_ptr =
      config.emit_stream ? &log : nullptr;

  DatabaseBuilder builder;
  const auto emit = [&](std::size_t source, std::size_t item,
                        std::string value) {
    std::string source_name = SourceName(source);
    std::string item_name = ItemName(item);
    const Status st = builder.AddObservation(source_name, item_name, value);
    assert(st.ok());
    (void)st;
    if (log_ptr != nullptr) {
      log_ptr->push_back(StreamObservation{std::move(source_name),
                                           std::move(item_name),
                                           std::move(value), 0.0});
    }
  };

  // Pass 1 — head coverage: head j votes true on every item i % heads == j.
  // Hot items are covered too; the conflict pass below revises those votes
  // (builder semantics: last write wins), so each head still holds exactly
  // one vote per covered item.
  for (std::size_t j = 0; j < heads; ++j) {
    for (std::size_t i = j; i < n; i += heads) {
      emit(j, i, SyntheticTrueValue(i));
    }
  }

  // Pass 2 — base votes: every tail item gets `base_votes` agreeing true
  // votes from hash-spread tail sources. Hot items are skipped — their
  // claim balance is owned entirely by the heads and contesters.
  for (std::size_t i = 0; i < n; ++i) {
    if (is_hot(i)) continue;
    for (std::size_t t = 0; t < config.base_votes; ++t) {
      const std::size_t src =
          tail_base + (i * 2654435761ULL + t * 1000003ULL) % num_tail;
      emit(src, i, SyntheticTrueValue(i));
    }
  }

  // Pass 3 — contesters: hot item r gets one true vote from source
  // contester_base + 2r and one false vote from contester_base + 2r + 1.
  // The true contester's degree is inflated (forced extra true votes on the
  // items following r's) so its fused accuracy — and with it the item's
  // log-odds gap — ramps with r. Contester sources are unique per hot item,
  // so a lookahead pin's (large) shift of a contester accuracy ripples only
  // into that contester's zero-entropy coverage, never into other hot items.
  const std::size_t d_false = config.contester_degree;
  std::vector<std::size_t> head_order(heads);
  for (std::size_t r = 0; r < hot; ++r) {
    const std::size_t item = hot_id(r);
    const double logit = config.max_hot_logit * static_cast<double>(r + 1) /
                         static_cast<double>(hot);
    const std::size_t d_true = std::max<std::size_t>(
        d_false + 1,
        static_cast<std::size_t>(
            std::llround(static_cast<double>(d_false) * std::exp(logit))));
    const std::size_t src_true = contester_base + 2 * r;
    const std::size_t src_false = contester_base + 2 * r + 1;
    // Forced-degree filler votes: true votes on the tail items after `item`.
    std::size_t cursor = item + 1;
    const auto next_tail_item = [&] {
      while (is_hot(cursor % n)) ++cursor;
      return cursor++ % n;
    };
    for (std::size_t q = 0; q + 1 < d_true; ++q) {
      const std::size_t filler = next_tail_item();
      emit(src_true, filler, SyntheticTrueValue(filler));
    }
    for (std::size_t q = 0; q + 1 < d_false; ++q) {
      const std::size_t filler = next_tail_item();
      emit(src_false, filler, SyntheticTrueValue(filler));
    }
    emit(src_true, item, SyntheticTrueValue(item));
    emit(src_false, item, SyntheticFalseValue(item, 0));

    // Pass 3b — head conflict: all heads vote on the hot item, exactly half
    // of them (a seeded random subset) falsely. Head accuracies all clamp to
    // the same ceiling, so the balanced split cancels and the contesters
    // alone set the item's fused log-odds gap.
    std::iota(head_order.begin(), head_order.end(), 0);
    rng.Shuffle(&head_order);
    for (std::size_t p = 0; p < heads; ++p) {
      const bool vote_false = p < heads / 2;
      emit(head_order[p], item,
           vote_false ? SyntheticFalseValue(item, 0)
                      : SyntheticTrueValue(item));
    }
  }

  SyntheticDataset out;
  out.db = builder.Build();
  out.truth = BuildTruth(out.db);
  out.true_accuracies = MeasureAccuracies(out.db, out.truth);
  if (config.emit_stream) {
    StampStream(&log, &stream_rng);
    out.stream = std::move(log);
    out.truth_stream = BuildTruthStream(out.db, out.truth, &stream_rng);
  }
  if (report != nullptr) {
    report->generator = "scaled_longtail";
    FillReportFromDatabase(out.db, report);
    report->head_sources = heads;
    report->notes = "hot_items=" + std::to_string(hot) +
                    " stride=" + std::to_string(stride) +
                    " tail_sources=" + std::to_string(num_tail);
  }
  return out;
}

}  // namespace

Result<SyntheticDataset> GenerateFromSpec(const DatasetSpec& spec,
                                          GenerationReport* report) {
  if (spec.num_items == 0 || spec.num_sources == 0) {
    return Status::InvalidArgument(
        "DatasetSpec: num_items and num_sources must be > 0");
  }
  ParamReader reader(spec.params);
  SyntheticDataset dataset;
  std::string generator;
  if (spec.shape == "dense") {
    DenseConfig config;
    config.num_items = spec.num_items;
    config.num_sources = spec.num_sources;
    config.seed = spec.seed;
    VERITAS_RETURN_IF_ERROR(ReadCommonParams(&reader, &config));
    VERITAS_ASSIGN_OR_RETURN(config.density,
                             reader.GetDouble("density", config.density));
    VERITAS_RETURN_IF_ERROR(reader.CheckAllConsumed());
    dataset = GenerateDense(config);
    generator = "dense";
  } else if (spec.shape == "longtail") {
    LongTailConfig config;
    config.num_items = spec.num_items;
    config.num_sources = spec.num_sources;
    config.seed = spec.seed;
    VERITAS_RETURN_IF_ERROR(ReadCommonParams(&reader, &config));
    VERITAS_ASSIGN_OR_RETURN(
        config.avg_votes_per_item,
        reader.GetDouble("avg_votes_per_item", config.avg_votes_per_item));
    VERITAS_ASSIGN_OR_RETURN(
        config.pareto_alpha,
        reader.GetDouble("pareto_alpha", config.pareto_alpha));
    VERITAS_ASSIGN_OR_RETURN(
        config.max_coverage_fraction,
        reader.GetDouble("max_coverage_fraction",
                         config.max_coverage_fraction));
    VERITAS_RETURN_IF_ERROR(reader.CheckAllConsumed());
    dataset = GenerateLongTail(config);
    generator = "longtail";
  } else if (spec.shape == "scaled_longtail") {
    ScaledLongTailConfig config;
    config.num_items = spec.num_items;
    config.num_sources = spec.num_sources;
    config.seed = spec.seed;
    VERITAS_ASSIGN_OR_RETURN(
        config.head_sources,
        reader.GetSize("head_sources", config.head_sources));
    VERITAS_ASSIGN_OR_RETURN(config.base_votes,
                             reader.GetSize("base_votes", config.base_votes));
    VERITAS_ASSIGN_OR_RETURN(config.hot_items,
                             reader.GetSize("hot_items", config.hot_items));
    VERITAS_ASSIGN_OR_RETURN(
        config.contester_degree,
        reader.GetSize("contester_degree", config.contester_degree));
    VERITAS_ASSIGN_OR_RETURN(
        config.max_hot_logit,
        reader.GetDouble("max_hot_logit", config.max_hot_logit));
    VERITAS_ASSIGN_OR_RETURN(config.emit_stream,
                             reader.GetBool("emit_stream",
                                            config.emit_stream));
    VERITAS_RETURN_IF_ERROR(reader.CheckAllConsumed());
    if (report != nullptr) report->dataset_name = spec.name;
    return GenerateScaledLongTail(config, report);
  } else {
    return Status::InvalidArgument("DatasetSpec: unknown shape: " +
                                   spec.shape);
  }
  if (report != nullptr) {
    report->generator = generator;
    report->dataset_name = spec.name;
    FillReportFromDatabase(dataset.db, report);
  }
  return dataset;
}

std::string SyntheticTrueValue(std::size_t item_index) {
  std::string out = "T";
  out += std::to_string(item_index);
  return out;
}

std::string SyntheticFalseValue(std::size_t item_index, std::size_t k) {
  std::string out = "F";
  out += std::to_string(item_index);
  out += "_";
  out += std::to_string(k);
  return out;
}

SyntheticDataset GenerateDense(const DenseConfig& config) {
  assert(config.num_items > 0 && config.num_sources > 0);
  Rng rng(config.seed);
  std::vector<double> accuracies = DrawAccuracies(
      config.num_sources, config.accuracy_mean, config.accuracy_sd, &rng);
  CopyPlan plan = MakeCopyPlan(config.num_sources, config.copier_fraction,
                               &rng);

  // The stream RNG is independent of the generator RNG: stamping (and the
  // default revision_fraction = 0) must not shift any generator draw, or
  // every previously generated dataset would change under the same seed.
  Rng stream_rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  const bool want_log = config.emit_stream || config.revision_fraction > 0.0;
  std::vector<StreamObservation> log;
  std::vector<StreamObservation>* log_ptr = want_log ? &log : nullptr;

  DatabaseBuilder builder;
  for (std::size_t j = 0; j < config.num_sources; ++j) {
    for (std::size_t i = 0; i < config.num_items; ++i) {
      if (!rng.Bernoulli(config.density)) continue;
      EmitVote(&builder, &plan, j, i, accuracies[j],
               config.max_false_claims, &rng, log_ptr);
    }
  }
  PatchCoverage(&builder, config.num_items, config.num_sources,
                config.ensure_true_claim, &rng, log_ptr);
  ApplyRevisions(&builder, &log, config.revision_fraction, &stream_rng);
  InheritCopierAccuracies(plan, &accuracies);

  SyntheticDataset out;
  out.db = builder.Build();
  out.truth = BuildTruth(out.db);
  out.true_accuracies = std::move(accuracies);
  if (config.emit_stream) {
    StampStream(&log, &stream_rng);
    out.stream = std::move(log);
    out.truth_stream = BuildTruthStream(out.db, out.truth, &stream_rng);
  }
  return out;
}

SyntheticDataset GenerateLongTail(const LongTailConfig& config) {
  assert(config.num_items > 0 && config.num_sources > 0);
  Rng rng(config.seed);
  std::vector<double> accuracies = DrawAccuracies(
      config.num_sources, config.accuracy_mean, config.accuracy_sd, &rng);
  CopyPlan plan = MakeCopyPlan(config.num_sources, config.copier_fraction,
                               &rng);

  // Pareto coverage weights -> per-source vote counts summing (roughly) to
  // the requested total budget.
  std::vector<double> weights(config.num_sources);
  for (double& w : weights) w = rng.Pareto(config.pareto_alpha);
  const double weight_sum =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  const double total_votes =
      config.avg_votes_per_item * static_cast<double>(config.num_items);
  const std::size_t max_cov = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.max_coverage_fraction *
                                  static_cast<double>(config.num_items)));

  Rng stream_rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  const bool want_log = config.emit_stream || config.revision_fraction > 0.0;
  std::vector<StreamObservation> log;
  std::vector<StreamObservation>* log_ptr = want_log ? &log : nullptr;

  DatabaseBuilder builder;
  std::vector<std::size_t> pool(config.num_items);
  std::iota(pool.begin(), pool.end(), 0);
  std::vector<std::size_t> catalog;
  for (std::size_t j = 0; j < config.num_sources; ++j) {
    std::size_t cov = static_cast<std::size_t>(
        std::llround(total_votes * weights[j] / weight_sum));
    cov = std::min(std::max<std::size_t>(cov, 1), max_cov);
    if (plan.IsCopier(j)) {
      // Long-tail copiers replicate a slice of the parent's *catalog* (the
      // items the parent covers), the way bookstore aggregators resell the
      // same data feed — which is what concentrates correlated errors on
      // the same items in the real Books/Population data.
      const auto& parent_votes = plan.parent_votes.at(plan.parent[j]);
      catalog.clear();
      catalog.reserve(parent_votes.size());
      for (const auto& [item, _] : parent_votes) catalog.push_back(item);
      std::sort(catalog.begin(), catalog.end());  // Determinism.
      rng.Shuffle(&catalog);
      cov = std::min(cov, catalog.size());
      for (std::size_t t = 0; t < cov; ++t) {
        EmitVote(&builder, &plan, j, catalog[t], accuracies[j],
                 config.max_false_claims, &rng, log_ptr);
      }
      continue;
    }
    // Partial Fisher-Yates: pick `cov` distinct items.
    for (std::size_t t = 0; t < cov; ++t) {
      const std::size_t swap_with = t + rng.UniformIndex(pool.size() - t);
      std::swap(pool[t], pool[swap_with]);
      EmitVote(&builder, &plan, j, pool[t], accuracies[j],
               config.max_false_claims, &rng, log_ptr);
    }
  }
  PatchCoverage(&builder, config.num_items, config.num_sources,
                config.ensure_true_claim, &rng, log_ptr);
  ApplyRevisions(&builder, &log, config.revision_fraction, &stream_rng);
  InheritCopierAccuracies(plan, &accuracies);

  SyntheticDataset out;
  out.db = builder.Build();
  out.truth = BuildTruth(out.db);
  out.true_accuracies = std::move(accuracies);
  if (config.emit_stream) {
    StampStream(&log, &stream_rng);
    out.stream = std::move(log);
    out.truth_stream = BuildTruthStream(out.db, out.truth, &stream_rng);
  }
  return out;
}

}  // namespace veritas
