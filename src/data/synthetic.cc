#include "data/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "model/database_builder.h"
#include "util/math.h"
#include "util/rng.h"

namespace veritas {

namespace {

std::string ItemName(std::size_t i) { return "item" + std::to_string(i); }
std::string SourceName(std::size_t j) { return "src" + std::to_string(j); }

// Accuracies drawn from N(mean, sd), clamped away from 0/1 so the generated
// data stays informative.
std::vector<double> DrawAccuracies(std::size_t n, double mean, double sd,
                                   Rng* rng) {
  std::vector<double> out(n);
  for (double& a : out) a = Clamp(rng->Normal(mean, sd), 0.05, 0.99);
  return out;
}

// Draws the value an independent source reports for an item: the true value
// with probability `accuracy`, otherwise a uniformly chosen false value.
std::string DrawValue(std::size_t item, double accuracy,
                      std::size_t max_false_claims, Rng* rng) {
  if (max_false_claims == 0 || rng->Bernoulli(accuracy)) {
    return SyntheticTrueValue(item);
  }
  return SyntheticFalseValue(item, rng->UniformIndex(max_false_claims));
}

// Assignment of copier sources to independent parents. Copiers replicate
// their parent's claims wherever the parent voted — the error-correlation
// mechanism behind the confidently-wrong items of real fused data.
struct CopyPlan {
  std::size_t num_independent = 0;
  // parent[j] is the parent of source j (only meaningful for copiers,
  // j >= num_independent).
  std::vector<std::size_t> parent;
  // Recorded votes (item -> value) of every source that acts as a parent.
  std::unordered_map<std::size_t,
                     std::unordered_map<std::size_t, std::string>>
      parent_votes;

  bool IsCopier(std::size_t source) const { return source >= num_independent; }
};

CopyPlan MakeCopyPlan(std::size_t num_sources, double copier_fraction,
                      Rng* rng) {
  CopyPlan plan;
  std::size_t copiers = static_cast<std::size_t>(
      std::floor(copier_fraction * static_cast<double>(num_sources)));
  copiers = std::min(copiers, num_sources - 1);  // Keep >= 1 independent.
  plan.num_independent = num_sources - copiers;
  plan.parent.assign(num_sources, 0);
  for (std::size_t j = plan.num_independent; j < num_sources; ++j) {
    plan.parent[j] = rng->UniformIndex(plan.num_independent);
    plan.parent_votes.emplace(plan.parent[j],
                              std::unordered_map<std::size_t, std::string>());
  }
  return plan;
}

// Emits one vote for (source, item): copiers replay the parent's value when
// available, everyone else draws independently. Parents record their votes.
// When `log` is non-null every accepted observation is recorded in emission
// order (timestamps are stamped later, see StampStream).
void EmitVote(DatabaseBuilder* builder, CopyPlan* plan, std::size_t source,
              std::size_t item, double accuracy,
              std::size_t max_false_claims, Rng* rng,
              std::vector<StreamObservation>* log) {
  std::string value;
  bool copied = false;
  if (plan->IsCopier(source)) {
    const auto parent_it = plan->parent_votes.find(plan->parent[source]);
    if (parent_it != plan->parent_votes.end()) {
      const auto vote_it = parent_it->second.find(item);
      if (vote_it != parent_it->second.end()) {
        value = vote_it->second;
        copied = true;
      }
    }
  }
  if (!copied) {
    value = DrawValue(item, accuracy, max_false_claims, rng);
  }
  auto recorder = plan->parent_votes.find(source);
  if (recorder != plan->parent_votes.end()) {
    recorder->second.emplace(item, value);
  }
  std::string source_name = SourceName(source);
  std::string item_name = ItemName(item);
  const Status st = builder->AddObservation(source_name, item_name, value);
  assert(st.ok());
  (void)st;
  if (log != nullptr) {
    log->push_back(StreamObservation{std::move(source_name),
                                     std::move(item_name), std::move(value),
                                     0.0});
  }
}

// Ensures every item exists in the builder with at least one vote, and
// (optionally) that the true value appears among the claims.
void PatchCoverage(DatabaseBuilder* builder, std::size_t num_items,
                   std::size_t num_sources, bool ensure_true_claim, Rng* rng,
                   std::vector<StreamObservation>* log) {
  const Database snapshot = builder->Build();
  for (std::size_t i = 0; i < num_items; ++i) {
    const auto found = snapshot.FindItem(ItemName(i));
    bool needs_true = ensure_true_claim;
    if (found.ok()) {
      if (needs_true) {
        needs_true =
            !snapshot.FindClaim(found.value(), SyntheticTrueValue(i)).ok();
      }
      if (!needs_true) continue;
    }
    // Give the item a truthful vote from a random source (retry a few times
    // in case that source already voted falsely on the item — the builder's
    // last-write-wins semantics would silently overwrite that vote and
    // change the generated dataset, so probe first).
    for (int attempt = 0; attempt < 16; ++attempt) {
      const std::size_t j = rng->UniformIndex(num_sources);
      if (builder->WouldRevise(SourceName(j), ItemName(i),
                               SyntheticTrueValue(i))) {
        continue;
      }
      std::string source_name = SourceName(j);
      std::string item_name = ItemName(i);
      std::string value = SyntheticTrueValue(i);
      const Status st = builder->AddObservation(source_name, item_name, value);
      assert(st.ok());
      (void)st;
      if (log != nullptr) {
        log->push_back(StreamObservation{std::move(source_name),
                                         std::move(item_name),
                                         std::move(value), 0.0});
      }
      break;
    }
  }
}

// Builds the ground truth: every item whose true value appears among its
// claims gets that claim marked true.
GroundTruth BuildTruth(const Database& db) {
  GroundTruth truth(db);
  for (ItemId i = 0; i < db.num_items(); ++i) {
    // Generated item names are "item<k>"; recover k to form the true value.
    const std::string& name = db.item(i).name;
    const std::size_t index = std::stoul(name.substr(4));
    const auto claim = db.FindClaim(i, SyntheticTrueValue(index));
    if (claim.ok()) {
      const Status st = truth.Set(db, i, claim.value());
      assert(st.ok());
      (void)st;
    }
  }
  return truth;
}

// Item index k from a generated item name "item<k>".
std::size_t ItemIndexOf(const std::string& name) {
  return std::stoul(name.substr(4));
}

// Appends late corrective re-observations to the log *and* the builder:
// randomly chosen earlier observations are repeated with the item's true
// value — a last-write-wins revision when the original vote was false, an
// idempotent duplicate otherwise. Draws come from the stream RNG so the
// fraction-0 path leaves the generated database untouched.
void ApplyRevisions(DatabaseBuilder* builder,
                    std::vector<StreamObservation>* log,
                    double revision_fraction, Rng* stream_rng) {
  if (revision_fraction <= 0.0 || log->empty()) return;
  const std::size_t original = log->size();
  const std::size_t count = static_cast<std::size_t>(
      std::floor(revision_fraction * static_cast<double>(original)));
  for (std::size_t r = 0; r < count; ++r) {
    const StreamObservation& past = (*log)[stream_rng->UniformIndex(original)];
    StreamObservation corrected{past.source, past.item,
                                SyntheticTrueValue(ItemIndexOf(past.item)),
                                0.0};
    const Status st = builder->AddObservation(corrected.source, corrected.item,
                                              corrected.value);
    assert(st.ok());
    (void)st;
    log->push_back(std::move(corrected));
  }
}

// Stamps strictly increasing timestamps t_k = (k + 0.5 u_k) / N onto the log
// (u_k uniform in [0,1)), so sorting by timestamp reproduces emission order
// exactly — replaying the stream builds a database with identical ids. The
// jitter comes from a *separate* RNG so stamping never perturbs the
// generator's own draw sequence.
void StampStream(std::vector<StreamObservation>* log, Rng* stream_rng) {
  const double n = static_cast<double>(log->size());
  for (std::size_t k = 0; k < log->size(); ++k) {
    (*log)[k].timestamp =
        (static_cast<double>(k) + 0.5 * stream_rng->Uniform()) / n;
  }
}

// Truth disclosures for every item whose true claim exists, each at an
// independent uniform timestamp — deliberately uncorrelated with the item's
// first observation so some truths precede their items in the stream.
std::vector<StreamTruth> BuildTruthStream(const Database& db,
                                          const GroundTruth& truth,
                                          Rng* stream_rng) {
  std::vector<StreamTruth> out;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (!truth.Knows(i)) continue;
    out.push_back(StreamTruth{db.item(i).name,
                              SyntheticTrueValue(ItemIndexOf(db.item(i).name)),
                              stream_rng->Uniform()});
  }
  return out;
}

// A copier's effective accuracy is (mostly) its parent's: report that in
// true_accuracies so tests comparing estimated vs true accuracies stay
// meaningful.
void InheritCopierAccuracies(const CopyPlan& plan,
                             std::vector<double>* accuracies) {
  for (std::size_t j = plan.num_independent; j < accuracies->size(); ++j) {
    (*accuracies)[j] = (*accuracies)[plan.parent[j]];
  }
}

}  // namespace

std::string SyntheticTrueValue(std::size_t item_index) {
  std::string out = "T";
  out += std::to_string(item_index);
  return out;
}

std::string SyntheticFalseValue(std::size_t item_index, std::size_t k) {
  std::string out = "F";
  out += std::to_string(item_index);
  out += "_";
  out += std::to_string(k);
  return out;
}

SyntheticDataset GenerateDense(const DenseConfig& config) {
  assert(config.num_items > 0 && config.num_sources > 0);
  Rng rng(config.seed);
  std::vector<double> accuracies = DrawAccuracies(
      config.num_sources, config.accuracy_mean, config.accuracy_sd, &rng);
  CopyPlan plan = MakeCopyPlan(config.num_sources, config.copier_fraction,
                               &rng);

  // The stream RNG is independent of the generator RNG: stamping (and the
  // default revision_fraction = 0) must not shift any generator draw, or
  // every previously generated dataset would change under the same seed.
  Rng stream_rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  const bool want_log = config.emit_stream || config.revision_fraction > 0.0;
  std::vector<StreamObservation> log;
  std::vector<StreamObservation>* log_ptr = want_log ? &log : nullptr;

  DatabaseBuilder builder;
  for (std::size_t j = 0; j < config.num_sources; ++j) {
    for (std::size_t i = 0; i < config.num_items; ++i) {
      if (!rng.Bernoulli(config.density)) continue;
      EmitVote(&builder, &plan, j, i, accuracies[j],
               config.max_false_claims, &rng, log_ptr);
    }
  }
  PatchCoverage(&builder, config.num_items, config.num_sources,
                config.ensure_true_claim, &rng, log_ptr);
  ApplyRevisions(&builder, &log, config.revision_fraction, &stream_rng);
  InheritCopierAccuracies(plan, &accuracies);

  SyntheticDataset out;
  out.db = builder.Build();
  out.truth = BuildTruth(out.db);
  out.true_accuracies = std::move(accuracies);
  if (config.emit_stream) {
    StampStream(&log, &stream_rng);
    out.stream = std::move(log);
    out.truth_stream = BuildTruthStream(out.db, out.truth, &stream_rng);
  }
  return out;
}

SyntheticDataset GenerateLongTail(const LongTailConfig& config) {
  assert(config.num_items > 0 && config.num_sources > 0);
  Rng rng(config.seed);
  std::vector<double> accuracies = DrawAccuracies(
      config.num_sources, config.accuracy_mean, config.accuracy_sd, &rng);
  CopyPlan plan = MakeCopyPlan(config.num_sources, config.copier_fraction,
                               &rng);

  // Pareto coverage weights -> per-source vote counts summing (roughly) to
  // the requested total budget.
  std::vector<double> weights(config.num_sources);
  for (double& w : weights) w = rng.Pareto(config.pareto_alpha);
  const double weight_sum =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  const double total_votes =
      config.avg_votes_per_item * static_cast<double>(config.num_items);
  const std::size_t max_cov = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.max_coverage_fraction *
                                  static_cast<double>(config.num_items)));

  Rng stream_rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  const bool want_log = config.emit_stream || config.revision_fraction > 0.0;
  std::vector<StreamObservation> log;
  std::vector<StreamObservation>* log_ptr = want_log ? &log : nullptr;

  DatabaseBuilder builder;
  std::vector<std::size_t> pool(config.num_items);
  std::iota(pool.begin(), pool.end(), 0);
  std::vector<std::size_t> catalog;
  for (std::size_t j = 0; j < config.num_sources; ++j) {
    std::size_t cov = static_cast<std::size_t>(
        std::llround(total_votes * weights[j] / weight_sum));
    cov = std::min(std::max<std::size_t>(cov, 1), max_cov);
    if (plan.IsCopier(j)) {
      // Long-tail copiers replicate a slice of the parent's *catalog* (the
      // items the parent covers), the way bookstore aggregators resell the
      // same data feed — which is what concentrates correlated errors on
      // the same items in the real Books/Population data.
      const auto& parent_votes = plan.parent_votes.at(plan.parent[j]);
      catalog.clear();
      catalog.reserve(parent_votes.size());
      for (const auto& [item, _] : parent_votes) catalog.push_back(item);
      std::sort(catalog.begin(), catalog.end());  // Determinism.
      rng.Shuffle(&catalog);
      cov = std::min(cov, catalog.size());
      for (std::size_t t = 0; t < cov; ++t) {
        EmitVote(&builder, &plan, j, catalog[t], accuracies[j],
                 config.max_false_claims, &rng, log_ptr);
      }
      continue;
    }
    // Partial Fisher-Yates: pick `cov` distinct items.
    for (std::size_t t = 0; t < cov; ++t) {
      const std::size_t swap_with = t + rng.UniformIndex(pool.size() - t);
      std::swap(pool[t], pool[swap_with]);
      EmitVote(&builder, &plan, j, pool[t], accuracies[j],
               config.max_false_claims, &rng, log_ptr);
    }
  }
  PatchCoverage(&builder, config.num_items, config.num_sources,
                config.ensure_true_claim, &rng, log_ptr);
  ApplyRevisions(&builder, &log, config.revision_fraction, &stream_rng);
  InheritCopierAccuracies(plan, &accuracies);

  SyntheticDataset out;
  out.db = builder.Build();
  out.truth = BuildTruth(out.db);
  out.true_accuracies = std::move(accuracies);
  if (config.emit_stream) {
    StampStream(&log, &stream_rng);
    out.stream = std::move(log);
    out.truth_stream = BuildTruthStream(out.db, out.truth, &stream_rng);
  }
  return out;
}

}  // namespace veritas
