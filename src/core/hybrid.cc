#include "core/hybrid.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "core/approx_meu.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace veritas {

ApproxMeuKStrategy::ApproxMeuKStrategy(double k_percent,
                                       std::size_t num_threads)
    : k_percent_(k_percent),
      num_threads_(num_threads == 0 ? 1 : num_threads) {
  assert(k_percent > 0.0 && k_percent <= 100.0);
}

std::string ApproxMeuKStrategy::name() const {
  // "approx_meu_k:10" style, with trailing zeros trimmed for round values.
  const double rounded = std::round(k_percent_);
  if (std::fabs(rounded - k_percent_) < 1e-9) {
    return "approx_meu_k:" + std::to_string(static_cast<int>(rounded));
  }
  return "approx_meu_k:" + FormatDouble(k_percent_, 2);
}

std::vector<ItemId> ApproxMeuKStrategy::FilterCandidates(
    const StrategyContext& ctx, double k_percent) {
  const Database& db = *ctx.db;
  std::vector<ItemId> candidates = CandidateItems(ctx);
  if (candidates.empty()) return candidates;

  // Rank by vote entropy first, fusion-output entropy second (§B.3).
  std::vector<double> vote_h(candidates.size());
  std::vector<double> fusion_h(candidates.size());
  for (std::size_t idx = 0; idx < candidates.size(); ++idx) {
    vote_h[idx] = VoteEntropy(db, candidates[idx]);
    fusion_h[idx] = ctx.fusion->ItemEntropy(candidates[idx]);
  }
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (vote_h[a] != vote_h[b]) return vote_h[a] > vote_h[b];
    if (fusion_h[a] != fusion_h[b]) return fusion_h[a] > fusion_h[b];
    return candidates[a] < candidates[b];
  });

  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(static_cast<double>(candidates.size()) * k_percent /
                       100.0)));
  std::vector<ItemId> out;
  out.reserve(std::min(keep, candidates.size()));
  for (std::size_t i = 0; i < order.size() && out.size() < keep; ++i) {
    out.push_back(candidates[order[i]]);
  }
  return out;
}

std::vector<ItemId> ApproxMeuKStrategy::SelectBatch(const StrategyContext& ctx,
                                                    std::size_t batch) {
  VERITAS_SPAN("strategy.hybrid.select");
  static Counter* select_calls =
      MetricsRegistry::Global().GetCounter("strategy.hybrid.select_calls");
  static Histogram* kept_hist = MetricsRegistry::Global().GetHistogram(
      "strategy.hybrid.kept_candidates", MetricsRegistry::CountEdges());
  select_calls->Add(1);
  const std::vector<ItemId> candidates = FilterCandidates(ctx, k_percent_);
  kept_hist->Observe(static_cast<double>(candidates.size()));
  if (candidates.empty()) return candidates;
  // Hard stop between the filter and the (expensive) impact scoring; the
  // scoring loop itself polls the token per candidate.
  if (HardStopRequested(ctx.cancel)) return {};
  // Impact computation is restricted to the same top-k% set (§B.3: "We
  // compute only the impact of these ... data items on each other").
  std::vector<bool> impact_filter(ctx.db->num_items(), false);
  for (ItemId i : candidates) impact_filter[i] = true;
  if (num_threads_ > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
  const std::vector<double> gains = ApproxMeuStrategy::ScoreCandidates(
      ctx, candidates, &impact_filter, pool_.get());
  return TopKByScore(candidates, gains, batch);
}

}  // namespace veritas
