#include "core/meu.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace veritas {

namespace {

// A hypothesis this unlikely moves the pk-weighted expectation by less
// than pk * |H_pinned| <~ 1e-9 nats — orders of magnitude below the
// fusion tolerance, so the closed-form "pin without propagation" value
// (pinned item drops to zero entropy, everything else keeps its base
// value) stands in for the full lookahead.
constexpr double kNegligiblePinMass = 1e-12;

// Monotone non-decreasing pruning threshold: the top_k-th best *exact* gain
// seen so far (-inf until top_k exact gains exist). Writers funnel through a
// mutex-protected min-heap (top_k is tiny — the batch size); readers poll a
// lock-free snapshot. A stale (smaller) read only weakens pruning, never
// correctness, and monotonicity is what makes the bound admissible: a
// candidate pruned against any intermediate threshold is provably below the
// *final* top_k-th best exact gain too.
class GainThreshold {
 public:
  explicit GainThreshold(std::size_t k) : k_(k) {}

  double Get() const { return value_.load(std::memory_order_relaxed); }

  void Offer(double gain) {
    if (k_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (heap_.size() < k_) {
      heap_.push(gain);
    } else if (gain > heap_.top()) {
      heap_.pop();
      heap_.push(gain);
    } else {
      return;
    }
    if (heap_.size() == k_) {
      value_.store(heap_.top(), std::memory_order_relaxed);
    }
  }

 private:
  const std::size_t k_;
  std::mutex mu_;
  std::priority_queue<double, std::vector<double>, std::greater<double>> heap_;
  std::atomic<double> value_{-std::numeric_limits<double>::infinity()};
};

void AtomicMaxDouble(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
  }
}

}  // namespace

double MeuStrategy::ExpectedEntropyAfterValidation(const StrategyContext& ctx,
                                                   ItemId item) {
  if (ctx.delta != nullptr && ctx.warm_start_lookahead) {
    const DeltaFusionEngine::BaseState base = ctx.delta->PrepareBase(*ctx.fusion);
    DeltaFusionEngine::Workspace ws;
    return ExpectedEntropyAfterValidation(ctx, item, base, ws);
  }
  const Database& db = *ctx.db;
  double expected = 0.0;
  for (ClaimIndex k = 0; k < db.num_claims(item); ++k) {
    const double pk = ctx.fusion->prob(item, k);
    if (pk <= 0.0) continue;  // Zero-probability hypotheses contribute 0.
    PriorSet lookahead = *ctx.priors;
    lookahead.SetExact(db, item, k);
    const FusionResult result = ctx.model->Fuse(
        db, lookahead, *ctx.fusion_opts,
        ctx.warm_start_lookahead ? ctx.fusion : nullptr);
    expected += pk * result.TotalEntropy();
  }
  return expected;
}

double MeuStrategy::ExpectedEntropyAfterValidation(
    const StrategyContext& ctx, ItemId item,
    const DeltaFusionEngine::BaseState& base,
    DeltaFusionEngine::Workspace& ws) {
  const Database& db = *ctx.db;
  double expected = 0.0;
  for (ClaimIndex k = 0; k < db.num_claims(item); ++k) {
    const double pk = ctx.fusion->prob(item, k);
    if (pk <= 0.0) continue;
    if (pk < kNegligiblePinMass) {
      expected += pk * (base.total_entropy - base.item_entropy[item]);
      continue;
    }
    expected +=
        pk * ctx.delta->EntropyAfterExactPin(base, ws, *ctx.priors, item, k);
  }
  return expected;
}

std::vector<std::size_t> MeuStrategy::ScanOrder(
    const StrategyContext& ctx, const std::vector<ItemId>& candidates) const {
  const std::size_t n = candidates.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::vector<double> entropy(n);
  for (std::size_t i = 0; i < n; ++i) {
    entropy[i] = ctx.fusion->ItemEntropy(candidates[i]);
  }
  constexpr std::size_t kUnseeded = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> rank(n, kUnseeded);
  if (!seed_ranking_.empty()) {
    std::unordered_map<ItemId, std::size_t> seed_rank;
    seed_rank.reserve(seed_ranking_.size());
    for (std::size_t r = 0; r < seed_ranking_.size(); ++r) {
      seed_rank.emplace(seed_ranking_[r], r);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const auto it = seed_rank.find(candidates[i]);
      if (it != seed_rank.end()) rank[i] = it->second;
    }
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (rank[a] != rank[b]) return rank[a] < rank[b];  // Seeded first.
    if (entropy[a] != entropy[b]) return entropy[a] > entropy[b];
    return candidates[a] < candidates[b];
  });
  return order;
}

std::vector<double> MeuStrategy::ScoreCandidateGains(
    const StrategyContext& ctx, const std::vector<ItemId>& candidates,
    std::size_t top_k, bool allow_prune) {
  return ScanCandidateGains(ctx, candidates, top_k, allow_prune,
                            /*plan=*/nullptr);
}

std::vector<double> MeuStrategy::ScanCandidateGains(
    const StrategyContext& ctx, const std::vector<ItemId>& candidates,
    std::size_t top_k, bool allow_prune, const ShardedScanPlan* plan,
    const DeltaFusionEngine::BaseState* shared_base) {
  static Counter* pruned_counter =
      MetricsRegistry::Global().GetCounter("meu.candidates_pruned");
  static Counter* steals_counter =
      MetricsRegistry::Global().GetCounter("meu.pool_steals");
  // Largest observed gain / H_item ratio: the empirical check on the
  // prune_margin_rel bound (must stay below 1 + margin; see DESIGN.md §5f).
  static Gauge* bound_ratio_gauge =
      MetricsRegistry::Global().GetGauge("meu.max_gain_bound_ratio");

  std::vector<double> gains(candidates.size(), 0.0);
  if (candidates.empty()) return gains;
  const double current_entropy = ctx.fusion->TotalEntropy();
  const bool use_delta = ctx.delta != nullptr && ctx.warm_start_lookahead;

  // One flattened base state serves the whole candidate scan; each lane
  // pins into its own persistent O(frontier) workspace. A caller-owned
  // shared base skips the O(database) flatten (and the per-lane workspace
  // re-sync a fresh base would force).
  std::optional<DeltaFusionEngine::BaseState> local_base;
  const DeltaFusionEngine::BaseState* base = shared_base;
  if (use_delta && base == nullptr) {
    local_base.emplace(ctx.delta->PrepareBase(*ctx.fusion));
    base = &*local_base;
  }

  // Shard-confined mode: each candidate's lookahead propagates inside its
  // own shard, and branch-and-bound runs per shard (top_k is the per-shard
  // merge quota). Confinement requires the delta path.
  const std::uint32_t* shard_map =
      plan != nullptr && use_delta ? plan->partition().shard_map().data()
                                   : nullptr;

  const std::vector<std::size_t> order = ScanOrder(ctx, candidates);
  const bool prune = allow_prune && scan_.prune && use_delta && top_k > 0 &&
                     top_k < candidates.size();
  // One threshold per shard in confined mode (each shard selects its own
  // top-quota); a single global threshold otherwise. GainThreshold is
  // neither movable nor copyable, hence the unique_ptr elements.
  const std::size_t num_thresholds =
      shard_map != nullptr ? plan->num_shards() : 1;
  std::vector<std::unique_ptr<GainThreshold>> thresholds;
  thresholds.reserve(num_thresholds);
  for (std::size_t s = 0; s < num_thresholds; ++s) {
    thresholds.push_back(std::make_unique<GainThreshold>(prune ? top_k : 0));
  }
  std::atomic<std::uint64_t> pruned{0};
  std::atomic<double> max_ratio{0.0};
  if (lane_ws_.size() < num_threads_) lane_ws_.resize(num_threads_);

  const ThreadPool::Body body = [&](std::size_t lane, std::size_t begin,
                                    std::size_t end) {
    DeltaFusionEngine::Workspace& ws = lane_ws_[lane];
    std::vector<std::pair<double, ClaimIndex>> claims;  // (pk, k), reused.
    for (std::size_t pos = begin; pos < end; ++pos) {
      // Hard stop: abandon the scan. The truncated gains are never recorded
      // — the session discards the round — so the zero-filled tail is fine.
      if (HardStopRequested(ctx.cancel)) return;
      const std::size_t idx = order[pos];
      const ItemId item = candidates[idx];
      if (!use_delta) {
        // Cold / non-delta path: exact full-Fuse lookahead, never pruned
        // (the worked-example contract).
        gains[idx] =
            current_entropy - ExpectedEntropyAfterValidation(ctx, item);
        continue;
      }
      ItemScope scope;
      const ItemScope* scope_ptr = nullptr;
      if (shard_map != nullptr) {
        scope = plan->ScopeFor(item);
        scope_ptr = &scope;
      }
      GainThreshold& threshold =
          shard_map != nullptr ? *thresholds[shard_map[item]] : *thresholds[0];

      // Per-claim gain bound: pinning o_i removes its own entropy H_i
      // exactly; the cross-item ripple is bounded by margin * H_i (exactly
      // zero for Voting, where a pin moves nothing else). DESIGN.md §5f.
      // Confinement only shrinks the ripple, so the same bound is admissible
      // for the shard-confined estimates.
      const double h_item = base->item_entropy[item];
      const double margin =
          ctx.delta->cross_item_influence() ? scan_.prune_margin_rel : 0.0;
      const double claim_bound = (1.0 + margin) * h_item;
      if (prune && claim_bound < threshold.Get()) {
        // A-priori prune: gain <= claim_bound < threshold.
        gains[idx] = claim_bound;
        pruned.fetch_add(1, std::memory_order_relaxed);
        continue;
      }

      // Claims best-first (descending pk, ties by claim index) so the
      // partial bound tightens as fast as possible. The order is a pure
      // function of the fusion state — identical for every schedule.
      claims.clear();
      const Database& db = *ctx.db;
      double total_mass = 0.0;
      for (ClaimIndex k = 0; k < db.num_claims(item); ++k) {
        const double pk = ctx.fusion->prob(item, k);
        if (pk <= 0.0) continue;
        claims.emplace_back(pk, k);
        total_mass += pk;
      }
      std::sort(claims.begin(), claims.end(),
                [](const std::pair<double, ClaimIndex>& a,
                   const std::pair<double, ClaimIndex>& b) {
                  if (a.first != b.first) return a.first > b.first;
                  return a.second < b.second;
                });
      double expected = 0.0;
      double mass = 0.0;
      bool was_pruned = false;
      for (const auto& [pk, k] : claims) {
        if (pk < kNegligiblePinMass) {
          expected += pk * (base->total_entropy - base->item_entropy[item]);
        } else {
          expected += pk * ctx.delta->EntropyAfterExactPin(*base, ws,
                                                           *ctx.priors, item,
                                                           k, nullptr,
                                                           scope_ptr);
        }
        mass += pk;
        if (!prune) continue;
        // Each unevaluated claim keeps at least (current - claim_bound)
        // entropy, so the remaining mass can add at most
        // remaining * claim_bound of gain. The clamp keeps the bound
        // conservative against rounding in the mass accumulation.
        const double remaining = std::max(0.0, total_mass - mass);
        const double ub = (current_entropy - expected) -
                          remaining * (current_entropy - claim_bound);
        if (ub < threshold.Get()) {
          gains[idx] = ub;
          pruned.fetch_add(1, std::memory_order_relaxed);
          was_pruned = true;
          break;
        }
      }
      if (was_pruned) continue;
      // Delta EU_i of Eq. (7): current entropy minus expected entropy.
      const double gain = current_entropy - expected;
      gains[idx] = gain;
      if (prune) threshold.Offer(gain);
      // Gauge the margin only on items with entropy above the propagation's
      // numerical noise floor (~1e-9 nats): below it the quotient measures
      // rounding, not cross-item influence, and a pruned near-zero-entropy
      // item is below any plausible threshold regardless.
      if (h_item > 1e-6) AtomicMaxDouble(max_ratio, gain / h_item);
    }
  };

  const std::size_t n = candidates.size();
  std::uint64_t stolen = 0;
  if (num_threads_ <= 1 || n < scan_.serial_cutoff) {
    // Serial cutoff: tiny rounds run inline; pool dispatch costs more than
    // it buys (and the pool is not even constructed until first needed).
    body(/*lane=*/0, 0, n);
  } else {
    if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(num_threads_);
    stolen = pool_->ParallelFor(n, scan_.chunk_size, body);
  }
  pruned_counter->Add(pruned.load(std::memory_order_relaxed));
  if (stolen > 0) steals_counter->Add(stolen);
  const double ratio = max_ratio.load(std::memory_order_relaxed);
  if (ratio > bound_ratio_gauge->value()) bound_ratio_gauge->Set(ratio);

  // Seed the next round's scan with this round's ranking, so the eventual
  // winners are evaluated first and the threshold tightens immediately.
  // Confined estimates never seed: the ranking belongs to the exact scan.
  if (shard_map == nullptr) {
    seed_ranking_ = TopKByScore(candidates, gains, scan_.seed_limit);
  }
  return gains;
}

std::vector<ItemId> MeuStrategy::SelectBatch(const StrategyContext& ctx,
                                             std::size_t batch) {
  assert(ctx.model != nullptr && ctx.fusion_opts != nullptr &&
         "MeuStrategy requires ctx.model and ctx.fusion_opts");
  VERITAS_SPAN("strategy.meu.select");
  static Counter* select_calls =
      MetricsRegistry::Global().GetCounter("strategy.meu.select_calls");
  static Counter* lookaheads =
      MetricsRegistry::Global().GetCounter("strategy.meu.lookaheads");
  static Histogram* candidates_hist = MetricsRegistry::Global().GetHistogram(
      "strategy.meu.candidates", MetricsRegistry::CountEdges());
  const std::vector<ItemId> candidates = CandidateItems(ctx);
  select_calls->Add(1);
  lookaheads->Add(candidates.size());
  candidates_hist->Observe(static_cast<double>(candidates.size()));
  const std::size_t shards = ctx.fusion_opts->shards;
  const bool use_delta = ctx.delta != nullptr && ctx.warm_start_lookahead;
  if (shards > 1 && use_delta && candidates.size() > batch) {
    return SelectBatchSharded(ctx, candidates, batch, shards);
  }
  const std::vector<double> gains =
      ScoreCandidateGains(ctx, candidates, batch, /*allow_prune=*/true);
  return TopKByScore(candidates, gains, batch);
}

std::vector<ItemId> MeuStrategy::SelectBatchSharded(
    const StrategyContext& ctx, const std::vector<ItemId>& candidates,
    std::size_t batch, std::size_t shards) {
  VERITAS_SPAN("strategy.meu.select_sharded");
  static Counter* shard_scans =
      MetricsRegistry::Global().GetCounter("meu.shard_scans");
  static Histogram* pool_hist = MetricsRegistry::Global().GetHistogram(
      "meu.shard_pool_candidates", MetricsRegistry::CountEdges());
  shard_plan_.Prepare(ctx.delta->compiled(), shards);
  shard_scans->Add(1);

  // One O(database) flatten serves both stages: stage 2's pins run against
  // the same base (each lookahead restores what it touched), so neither the
  // flatten nor the per-lane workspace sync is paid twice.
  const DeltaFusionEngine::BaseState base =
      ctx.delta->PrepareBase(*ctx.fusion);

  // Stage 1: shard-confined estimates with per-shard branch-and-bound,
  // keeping each shard's top `quota` candidates competitive.
  const std::size_t quota = ShardedScanPlan::MergeQuota(batch);
  const std::vector<double> estimates = ScanCandidateGains(
      ctx, candidates, quota, /*allow_prune=*/true, &shard_plan_, &base);

  // Coordinator: deterministic per-shard top-quota merge.
  const std::vector<ItemId> pool = MergeTopCandidatesPerShard(
      candidates, estimates, shard_plan_.partition(), quota);
  pool_hist->Observe(static_cast<double>(pool.size()));

  // Stage 2: exact unconfined re-rank of the pool — the classic scan, just
  // on O(shards * quota) items. This also refreshes the seed ranking.
  const std::vector<double> gains = ScanCandidateGains(
      ctx, pool, batch, /*allow_prune=*/true, /*plan=*/nullptr, &base);
  return TopKByScore(pool, gains, batch);
}

}  // namespace veritas
