#include "core/meu.h"

#include <atomic>
#include <cassert>
#include <optional>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace veritas {

double MeuStrategy::ExpectedEntropyAfterValidation(const StrategyContext& ctx,
                                                   ItemId item) {
  if (ctx.delta != nullptr && ctx.warm_start_lookahead) {
    const DeltaFusionEngine::BaseState base = ctx.delta->PrepareBase(*ctx.fusion);
    DeltaFusionEngine::Workspace ws;
    return ExpectedEntropyAfterValidation(ctx, item, base, ws);
  }
  const Database& db = *ctx.db;
  double expected = 0.0;
  for (ClaimIndex k = 0; k < db.num_claims(item); ++k) {
    const double pk = ctx.fusion->prob(item, k);
    if (pk <= 0.0) continue;  // Zero-probability hypotheses contribute 0.
    PriorSet lookahead = *ctx.priors;
    lookahead.SetExact(db, item, k);
    const FusionResult result = ctx.model->Fuse(
        db, lookahead, *ctx.fusion_opts,
        ctx.warm_start_lookahead ? ctx.fusion : nullptr);
    expected += pk * result.TotalEntropy();
  }
  return expected;
}

double MeuStrategy::ExpectedEntropyAfterValidation(
    const StrategyContext& ctx, ItemId item,
    const DeltaFusionEngine::BaseState& base,
    DeltaFusionEngine::Workspace& ws) {
  const Database& db = *ctx.db;
  // A hypothesis this unlikely moves the pk-weighted expectation by less
  // than pk * |H_pinned| <~ 1e-9 nats — orders of magnitude below the
  // fusion tolerance, so the closed-form "pin without propagation" value
  // (pinned item drops to zero entropy, everything else keeps its base
  // value) stands in for the full lookahead.
  constexpr double kNegligiblePinMass = 1e-12;
  double expected = 0.0;
  for (ClaimIndex k = 0; k < db.num_claims(item); ++k) {
    const double pk = ctx.fusion->prob(item, k);
    if (pk <= 0.0) continue;
    if (pk < kNegligiblePinMass) {
      expected += pk * (base.total_entropy - base.item_entropy[item]);
      continue;
    }
    expected +=
        pk * ctx.delta->EntropyAfterExactPin(base, ws, *ctx.priors, item, k);
  }
  return expected;
}

std::vector<ItemId> MeuStrategy::SelectBatch(const StrategyContext& ctx,
                                             std::size_t batch) {
  assert(ctx.model != nullptr && ctx.fusion_opts != nullptr &&
         "MeuStrategy requires ctx.model and ctx.fusion_opts");
  VERITAS_SPAN("strategy.meu.select");
  static Counter* select_calls =
      MetricsRegistry::Global().GetCounter("strategy.meu.select_calls");
  static Counter* lookaheads =
      MetricsRegistry::Global().GetCounter("strategy.meu.lookaheads");
  static Histogram* candidates_hist = MetricsRegistry::Global().GetHistogram(
      "strategy.meu.candidates", MetricsRegistry::CountEdges());
  static Histogram* utilization_hist = MetricsRegistry::Global().GetHistogram(
      "strategy.meu.worker_utilization",
      {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0});
  const std::vector<ItemId> candidates = CandidateItems(ctx);
  select_calls->Add(1);
  lookaheads->Add(candidates.size());
  candidates_hist->Observe(static_cast<double>(candidates.size()));
  const double current_entropy = ctx.fusion->TotalEntropy();
  std::vector<double> gains(candidates.size(), 0.0);

  // One flattened base state serves the whole candidate scan; each worker
  // pins into its own O(frontier) workspace.
  const bool use_delta = ctx.delta != nullptr && ctx.warm_start_lookahead;
  std::optional<DeltaFusionEngine::BaseState> base;
  if (use_delta) base.emplace(ctx.delta->PrepareBase(*ctx.fusion));
  const auto expected_entropy = [&](ItemId item,
                                    DeltaFusionEngine::Workspace& ws) {
    return use_delta ? ExpectedEntropyAfterValidation(ctx, item, *base, ws)
                     : ExpectedEntropyAfterValidation(ctx, item);
  };

  const std::size_t workers = std::min(num_threads_, candidates.size());
  if (workers <= 1) {
    DeltaFusionEngine::Workspace ws;
    for (std::size_t idx = 0; idx < candidates.size(); ++idx) {
      // Hard stop: abandon the scan. The truncated gains are never recorded
      // — the session discards the round — so the zero-filled tail is fine.
      if (HardStopRequested(ctx.cancel)) break;
      // Delta EU_i of Eq. (7): current entropy minus expected entropy.
      gains[idx] = current_entropy - expected_entropy(candidates[idx], ws);
    }
  } else {
    // Each candidate's lookahead is independent; work-steal over an atomic
    // index so stragglers do not serialize the batch. Writes go to disjoint
    // slots, so the result is identical to the sequential run.
    Timer wall;
    std::vector<double> busy_seconds(workers, 0.0);
    std::atomic<std::size_t> next{0};
    auto work = [&](std::size_t worker) {
      Timer busy;
      DeltaFusionEngine::Workspace ws;
      while (true) {
        const std::size_t idx = next.fetch_add(1);
        if (idx >= candidates.size() || HardStopRequested(ctx.cancel)) break;
        gains[idx] = current_entropy - expected_entropy(candidates[idx], ws);
      }
      busy_seconds[worker] = busy.ElapsedSeconds();
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t t = 0; t + 1 < workers; ++t) {
      pool.emplace_back(work, t + 1);
    }
    work(0);
    for (std::thread& t : pool) t.join();
    // Worker utilization: each worker's busy time over the section's wall
    // time. Work stealing should keep every observation near 1.0; a low
    // tail means stragglers serialized the scan.
    const double wall_seconds = wall.ElapsedSeconds();
    if (wall_seconds > 0.0) {
      for (double busy : busy_seconds) {
        utilization_hist->Observe(busy / wall_seconds);
      }
    }
  }
  return TopKByScore(candidates, gains, batch);
}

}  // namespace veritas
