#include "core/meu.h"

#include <atomic>
#include <cassert>
#include <thread>

namespace veritas {

double MeuStrategy::ExpectedEntropyAfterValidation(const StrategyContext& ctx,
                                                   ItemId item) {
  const Database& db = *ctx.db;
  double expected = 0.0;
  for (ClaimIndex k = 0; k < db.num_claims(item); ++k) {
    const double pk = ctx.fusion->prob(item, k);
    if (pk <= 0.0) continue;  // Zero-probability hypotheses contribute 0.
    PriorSet lookahead = *ctx.priors;
    lookahead.SetExact(db, item, k);
    const FusionResult result = ctx.model->Fuse(
        db, lookahead, *ctx.fusion_opts,
        ctx.warm_start_lookahead ? ctx.fusion : nullptr);
    expected += pk * result.TotalEntropy();
  }
  return expected;
}

std::vector<ItemId> MeuStrategy::SelectBatch(const StrategyContext& ctx,
                                             std::size_t batch) {
  assert(ctx.model != nullptr && ctx.fusion_opts != nullptr &&
         "MeuStrategy requires ctx.model and ctx.fusion_opts");
  const std::vector<ItemId> candidates = CandidateItems(ctx);
  const double current_entropy = ctx.fusion->TotalEntropy();
  std::vector<double> gains(candidates.size(), 0.0);
  const std::size_t workers = std::min(num_threads_, candidates.size());
  if (workers <= 1) {
    for (std::size_t idx = 0; idx < candidates.size(); ++idx) {
      // Delta EU_i of Eq. (7): current entropy minus expected entropy.
      gains[idx] = current_entropy -
                   ExpectedEntropyAfterValidation(ctx, candidates[idx]);
    }
  } else {
    // Each candidate's lookahead is independent; work-steal over an atomic
    // index so stragglers do not serialize the batch. Writes go to disjoint
    // slots, so the result is identical to the sequential run.
    std::atomic<std::size_t> next{0};
    auto work = [&]() {
      while (true) {
        const std::size_t idx = next.fetch_add(1);
        if (idx >= candidates.size()) break;
        gains[idx] = current_entropy -
                     ExpectedEntropyAfterValidation(ctx, candidates[idx]);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t t = 0; t + 1 < workers; ++t) pool.emplace_back(work);
    work();
    for (std::thread& t : pool) t.join();
  }
  return TopKByScore(candidates, gains, batch);
}

}  // namespace veritas
