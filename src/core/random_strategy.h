// Random: the naive baseline (§5, "Competing Methods" #6) — every
// unvalidated item is considered equally beneficial. Requires ctx.rng.
#ifndef VERITAS_CORE_RANDOM_STRATEGY_H_
#define VERITAS_CORE_RANDOM_STRATEGY_H_

#include "core/strategy.h"

namespace veritas {

/// Uniformly random selection among unvalidated items.
class RandomStrategy : public Strategy {
 public:
  std::string name() const override { return "random"; }

  std::vector<ItemId> SelectBatch(const StrategyContext& ctx,
                                  std::size_t batch) override;
};

}  // namespace veritas

#endif  // VERITAS_CORE_RANDOM_STRATEGY_H_
