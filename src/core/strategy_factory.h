// Construction of strategies by name, for command-line experiment tools.
#ifndef VERITAS_CORE_STRATEGY_FACTORY_H_
#define VERITAS_CORE_STRATEGY_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "util/result.h"

namespace veritas {

/// Creates a strategy from its name: "random", "qbc", "us", "meu",
/// "approx_meu", "approx_meu_k:<percent>", "gub", "gub_expectation".
/// Unknown names yield NotFound. `num_threads` > 1 parallelizes the
/// candidate scan of the lookahead strategies ("meu", "meu2", "approx_meu",
/// "approx_meu_k:*", "gub", "gub_expectation") over a persistent
/// work-stealing pool; the cheap ranking strategies ignore it. Selected
/// items are identical for every thread count. All built-in fusion models
/// are thread-safe.
Result<std::unique_ptr<Strategy>> MakeStrategy(const std::string& name,
                                               std::size_t num_threads = 1);

/// Representative names accepted by MakeStrategy.
std::vector<std::string> StrategyNames();

}  // namespace veritas

#endif  // VERITAS_CORE_STRATEGY_FACTORY_H_
