// Sequential (two-step) MEU — the paper's stated future work (§4.2.2:
// "It is possible that some action may not lead to the highest VPI at the
// current step but validating it can result in a higher VPI in subsequent
// validations. Sequential validations are challenging and often
// computationally expensive; the present work focuses only on myopic
// strategies.").
//
// This strategy looks two validations ahead: the value of validating o_i is
// the expectation, over o_i's claims, of the entropy reachable after the
// *best* follow-up validation. Exhaustive two-step search is O((m*kappa)^2)
// re-fusions; we bound it with two beams:
//   * only the `beam_width` best items by one-step gain are expanded, and
//   * within each hypothesized state only the `inner_beam` most uncertain
//     items are considered as the follow-up action.
// Requires ctx.model and ctx.fusion_opts.
#ifndef VERITAS_CORE_SEQUENTIAL_MEU_H_
#define VERITAS_CORE_SEQUENTIAL_MEU_H_

#include "core/meu.h"
#include "core/strategy.h"

namespace veritas {

/// Beam bounds for the two-step search.
struct SequentialMeuOptions {
  std::size_t beam_width = 5;  ///< Items expanded at depth 1.
  std::size_t inner_beam = 5;  ///< Follow-up items evaluated at depth 2.
};

/// Two-step-lookahead VPI strategy over the entropy utility.
class SequentialMeuStrategy : public Strategy {
 public:
  /// `num_threads` > 1 fans the depth-1 myopic preselection over MEU's
  /// persistent pool. Pruning stays off there: the tail of the batch is
  /// ordered by myopic gain, which needs every gain exact.
  explicit SequentialMeuStrategy(SequentialMeuOptions options = {},
                                 std::size_t num_threads = 1)
      : options_(options), myopic_(num_threads) {}

  std::string name() const override { return "meu2"; }

  void Reset() override { myopic_.Reset(); }

  std::vector<ItemId> SelectBatch(const StrategyContext& ctx,
                                  std::size_t batch) override;

  /// Expected total entropy after validating `item` and then the best
  /// follow-up action (inner beam bounded). Exposed for tests.
  static double TwoStepExpectedEntropy(const StrategyContext& ctx,
                                       ItemId item, std::size_t inner_beam);

  const SequentialMeuOptions& options() const { return options_; }

 private:
  SequentialMeuOptions options_;
  MeuStrategy myopic_;  ///< Pooled exact scanner for the depth-1 gains.
};

}  // namespace veritas

#endif  // VERITAS_CORE_SEQUENTIAL_MEU_H_
