// Approx-MEU_k (§4.3 optimization 1, §B.3): the hybrid strategy that blends
// the insights of QBC, US and MEU. Unvalidated items are ranked primarily by
// vote entropy (QBC) and secondarily by fusion-output entropy (US); only the
// top k% participate as validation candidates AND as the impact set of the
// Approx-MEU estimate, shrinking the all-pairs cost from O(kappa m^2) to
// O(kappa K^2).
#ifndef VERITAS_CORE_HYBRID_H_
#define VERITAS_CORE_HYBRID_H_

#include <memory>

#include "core/strategy.h"
#include "util/thread_pool.h"

namespace veritas {

/// Approx-MEU restricted to the top k% most-disputed items.
class ApproxMeuKStrategy : public Strategy {
 public:
  /// `k_percent` in (0, 100]: fraction of the unvalidated conflicting items
  /// kept as candidates (at least one is always kept). `num_threads` > 1
  /// fans the impact scoring over a persistent pool (lane-count-independent
  /// results, as for ApproxMeuStrategy).
  explicit ApproxMeuKStrategy(double k_percent, std::size_t num_threads = 1);

  std::string name() const override;

  std::vector<ItemId> SelectBatch(const StrategyContext& ctx,
                                  std::size_t batch) override;

  double k_percent() const { return k_percent_; }

  /// The filtered candidate list (top k% by vote entropy, then fusion
  /// entropy). Exposed for tests.
  static std::vector<ItemId> FilterCandidates(const StrategyContext& ctx,
                                              double k_percent);

 private:
  double k_percent_;
  std::size_t num_threads_;
  std::unique_ptr<ThreadPool> pool_;  // Lazy; persists across rounds.
};

}  // namespace veritas

#endif  // VERITAS_CORE_HYBRID_H_
