// US — Uncertainty Sampling (§4.1.2): ranks items by the entropy of the
// fusion system's output distribution (Eq. 3 over the p_i^k output by F).
// Unlike QBC it reflects source accuracies, but needs fresh fusion output
// after every validation.
#ifndef VERITAS_CORE_US_H_
#define VERITAS_CORE_US_H_

#include "core/strategy.h"

namespace veritas {

/// Uncertainty-based item-level ranking over the fusion output.
class UsStrategy : public Strategy {
 public:
  std::string name() const override { return "us"; }

  std::vector<ItemId> SelectBatch(const StrategyContext& ctx,
                                  std::size_t batch) override;
};

}  // namespace veritas

#endif  // VERITAS_CORE_US_H_
