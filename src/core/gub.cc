#include "core/gub.h"

#include <atomic>
#include <cassert>
#include <limits>
#include <thread>

#include "core/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace veritas {

double GubStrategy::CandidateGain(const StrategyContext& ctx, ItemId item,
                                  double current_utility) const {
  const Database& db = *ctx.db;
  const GroundTruth& truth = *ctx.ground_truth;
  if (mode_ == GubMode::kOracle) {
    const ClaimIndex t = truth.TrueClaim(item);
    if (t == kInvalidClaim) {
      // Truth unknown: GUB cannot evaluate this item.
      return -std::numeric_limits<double>::infinity();
    }
    PriorSet lookahead = *ctx.priors;
    lookahead.SetExact(db, item, t);
    const FusionResult result = ctx.model->Fuse(
        db, lookahead, *ctx.fusion_opts,
        ctx.warm_start_lookahead ? ctx.fusion : nullptr);
    return GroundTruthUtility(db, result, truth) - current_utility;
  }
  // Definition 4: VPI = sum_k U(D, F | v_i^k true) p_i^k - U(D, F).
  double expected = 0.0;
  for (ClaimIndex k = 0; k < db.num_claims(item); ++k) {
    const double pk = ctx.fusion->prob(item, k);
    if (pk <= 0.0) continue;
    PriorSet lookahead = *ctx.priors;
    lookahead.SetExact(db, item, k);
    const FusionResult result = ctx.model->Fuse(
        db, lookahead, *ctx.fusion_opts,
        ctx.warm_start_lookahead ? ctx.fusion : nullptr);
    expected += pk * GroundTruthUtility(db, result, truth);
  }
  return expected - current_utility;
}

std::vector<ItemId> GubStrategy::SelectBatch(const StrategyContext& ctx,
                                             std::size_t batch) {
  assert(ctx.model != nullptr && ctx.fusion_opts != nullptr &&
         ctx.ground_truth != nullptr &&
         "GubStrategy requires ctx.model, ctx.fusion_opts, ctx.ground_truth");
  VERITAS_SPAN("strategy.gub.select");
  static Counter* select_calls =
      MetricsRegistry::Global().GetCounter("strategy.gub.select_calls");
  static Counter* lookaheads =
      MetricsRegistry::Global().GetCounter("strategy.gub.lookaheads");
  static Histogram* candidates_hist = MetricsRegistry::Global().GetHistogram(
      "strategy.gub.candidates", MetricsRegistry::CountEdges());
  static Histogram* utilization_hist = MetricsRegistry::Global().GetHistogram(
      "strategy.gub.worker_utilization",
      {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0});
  const std::vector<ItemId> candidates = CandidateItems(ctx);
  select_calls->Add(1);
  lookaheads->Add(candidates.size());
  candidates_hist->Observe(static_cast<double>(candidates.size()));
  const double current_utility =
      GroundTruthUtility(*ctx.db, *ctx.fusion, *ctx.ground_truth);

  std::vector<double> gains(candidates.size(), 0.0);
  const std::size_t workers = std::min(num_threads_, candidates.size());
  if (workers <= 1) {
    for (std::size_t idx = 0; idx < candidates.size(); ++idx) {
      // Hard stop: abandon the scan (the session discards the round).
      if (HardStopRequested(ctx.cancel)) break;
      gains[idx] = CandidateGain(ctx, candidates[idx], current_utility);
    }
  } else {
    // Independent lookaheads; see MeuStrategy::SelectBatch for the scheme
    // (including the per-worker utilization accounting).
    Timer wall;
    std::vector<double> busy_seconds(workers, 0.0);
    std::atomic<std::size_t> next{0};
    auto work = [&](std::size_t worker) {
      Timer busy;
      while (true) {
        const std::size_t idx = next.fetch_add(1);
        if (idx >= candidates.size() || HardStopRequested(ctx.cancel)) break;
        gains[idx] = CandidateGain(ctx, candidates[idx], current_utility);
      }
      busy_seconds[worker] = busy.ElapsedSeconds();
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t t = 0; t + 1 < workers; ++t) {
      pool.emplace_back(work, t + 1);
    }
    work(0);
    for (std::thread& t : pool) t.join();
    const double wall_seconds = wall.ElapsedSeconds();
    if (wall_seconds > 0.0) {
      for (double busy : busy_seconds) {
        utilization_hist->Observe(busy / wall_seconds);
      }
    }
  }
  return TopKByScore(candidates, gains, batch);
}

}  // namespace veritas
