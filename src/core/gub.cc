#include "core/gub.h"

#include <cassert>
#include <limits>
#include <unordered_map>

#include "core/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace veritas {

double GubStrategy::CandidateGain(const StrategyContext& ctx, ItemId item,
                                  double current_utility) const {
  const Database& db = *ctx.db;
  const GroundTruth& truth = *ctx.ground_truth;
  if (mode_ == GubMode::kOracle) {
    const ClaimIndex t = truth.TrueClaim(item);
    if (t == kInvalidClaim) {
      // Truth unknown: GUB cannot evaluate this item.
      return -std::numeric_limits<double>::infinity();
    }
    PriorSet lookahead = *ctx.priors;
    lookahead.SetExact(db, item, t);
    const FusionResult result = ctx.model->Fuse(
        db, lookahead, *ctx.fusion_opts,
        ctx.warm_start_lookahead ? ctx.fusion : nullptr);
    return GroundTruthUtility(db, result, truth) - current_utility;
  }
  // Definition 4: VPI = sum_k U(D, F | v_i^k true) p_i^k - U(D, F).
  double expected = 0.0;
  for (ClaimIndex k = 0; k < db.num_claims(item); ++k) {
    const double pk = ctx.fusion->prob(item, k);
    if (pk <= 0.0) continue;
    PriorSet lookahead = *ctx.priors;
    lookahead.SetExact(db, item, k);
    const FusionResult result = ctx.model->Fuse(
        db, lookahead, *ctx.fusion_opts,
        ctx.warm_start_lookahead ? ctx.fusion : nullptr);
    expected += pk * GroundTruthUtility(db, result, truth);
  }
  return expected - current_utility;
}

std::vector<ItemId> GubStrategy::SelectBatch(const StrategyContext& ctx,
                                             std::size_t batch) {
  assert(ctx.model != nullptr && ctx.fusion_opts != nullptr &&
         ctx.ground_truth != nullptr &&
         "GubStrategy requires ctx.model, ctx.fusion_opts, ctx.ground_truth");
  VERITAS_SPAN("strategy.gub.select");
  static Counter* select_calls =
      MetricsRegistry::Global().GetCounter("strategy.gub.select_calls");
  static Counter* lookaheads =
      MetricsRegistry::Global().GetCounter("strategy.gub.lookaheads");
  static Histogram* candidates_hist = MetricsRegistry::Global().GetHistogram(
      "strategy.gub.candidates", MetricsRegistry::CountEdges());
  const std::vector<ItemId> candidates = CandidateItems(ctx);
  select_calls->Add(1);
  lookaheads->Add(candidates.size());
  candidates_hist->Observe(static_cast<double>(candidates.size()));
  const double current_utility =
      GroundTruthUtility(*ctx.db, *ctx.fusion, *ctx.ground_truth);

  std::vector<double> gains(candidates.size(), 0.0);
  // Independent lookaheads written to disjoint slots: results are identical
  // for every lane count (see MeuStrategy for the pool pattern).
  const ThreadPool::Body body = [&](std::size_t lane, std::size_t begin,
                                    std::size_t end) {
    (void)lane;
    for (std::size_t idx = begin; idx < end; ++idx) {
      // Hard stop: abandon the scan (the session discards the round).
      if (HardStopRequested(ctx.cancel)) return;
      gains[idx] = CandidateGain(ctx, candidates[idx], current_utility);
    }
  };
  constexpr std::size_t kSerialCutoff = 32;
  if (num_threads_ <= 1 || candidates.size() < kSerialCutoff) {
    body(/*lane=*/0, 0, candidates.size());
  } else {
    if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(num_threads_);
    pool_->ParallelFor(candidates.size(), /*chunk_size=*/4, body);
  }

  // Sharded coordinator merge (fusion/sharded_scan.h): per-shard top-batch
  // by exact gain, merged, then the final rank over the pool. GUB gains are
  // item-independent, so this selects exactly the flat scan's batch — the
  // path exists so the merge protocol is exercised (and tested) on the one
  // strategy where identity is a theorem rather than an empirical check.
  const std::size_t shards =
      ctx.fusion_opts != nullptr ? ctx.fusion_opts->shards : 1;
  if (shards > 1 && ctx.delta != nullptr && candidates.size() > batch) {
    shard_plan_.Prepare(ctx.delta->compiled(), shards);
    const std::vector<ItemId> pool = MergeTopCandidatesPerShard(
        candidates, gains, shard_plan_.partition(), batch);
    std::vector<double> pool_gains(pool.size(), 0.0);
    std::unordered_map<ItemId, double> gain_of;
    gain_of.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      gain_of.emplace(candidates[i], gains[i]);
    }
    for (std::size_t i = 0; i < pool.size(); ++i) {
      pool_gains[i] = gain_of.at(pool[i]);
    }
    return TopKByScore(pool, pool_gains, batch);
  }
  return TopKByScore(candidates, gains, batch);
}

}  // namespace veritas
