// Performance metrics of §5 plus the utility functions of §4.2.1:
//   distance_to_ground_truth  — average error of fusion w.r.t. truth,
//   uncertainty               — total output entropy,
//   ground-truth utility      — Definition 3 (GUB's objective),
//   entropy utility           — Definition 5 (MEU's objective).
#ifndef VERITAS_CORE_METRICS_H_
#define VERITAS_CORE_METRICS_H_

#include "fusion/fusion_result.h"
#include "model/database.h"
#include "model/ground_truth.h"

namespace veritas {

/// distance_to_ground_truth = sum_{i : truth known} (1 - p_i^true) / |O|.
/// Items with unknown truth contribute zero (partial silver standards).
double DistanceToGroundTruth(const Database& db, const FusionResult& fusion,
                             const GroundTruth& truth);

/// uncertainty = sum_i H_i, the total Shannon entropy (nats) of the output.
double Uncertainty(const FusionResult& fusion);

/// Ground-truth utility (Definition 3):
///   U = (1/|V|) * sum_i p_i^true / |V_i|,
/// i.e. the average correctness of true claims. 1 means fusion is certain of
/// every true claim. Items with unknown truth contribute zero.
double GroundTruthUtility(const Database& db, const FusionResult& fusion,
                          const GroundTruth& truth);

/// Entropy utility (Definition 5): EU = -sum_i H_i. Closer to 0 is better.
double EntropyUtility(const FusionResult& fusion);

/// Fraction of items with known truth whose winning claim is the true claim
/// (a conventional accuracy readout, used in examples and reports).
double FusionAccuracy(const Database& db, const FusionResult& fusion,
                      const GroundTruth& truth);

}  // namespace veritas

#endif  // VERITAS_CORE_METRICS_H_
