#include "core/approx_meu.h"

#include <cassert>
#include <cmath>

#include "fusion/accu.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/math.h"

namespace veritas {

namespace {

// 1 / (A(s) (1 - A(s))) — the derivative factor of ln(A/(1-A)) appearing in
// Eq. (10)/(17). Accuracies are clamped so the factor stays finite.
double OddsDerivativeFactor(double accuracy) {
  const double a = ClampAccuracy(accuracy);
  return 1.0 / (a * (1.0 - a));
}

// g(v) per claim of item j: sum over affected sources voting for the claim of
// dA(s) / (A(s)(1-A(s))). Unaffected sources contribute zero.
std::vector<double> ComputeClaimG(const Database& db,
                                  const FusionResult& fusion, ItemId j,
                                  const AccuracyDeltas& deltas) {
  std::vector<double> g(db.num_claims(j), 0.0);
  for (const ItemVote& iv : db.item_votes(j)) {
    auto it = deltas.find(iv.source);
    if (it == deltas.end()) continue;
    g[iv.claim] += it->second * OddsDerivativeFactor(fusion.accuracy(iv.source));
  }
  return g;
}

}  // namespace

AccuracyDeltas ComputeAccuracyDeltas(const Database& db,
                                     const FusionResult& fusion, ItemId item,
                                     ClaimIndex true_claim) {
  AccuracyDeltas deltas;
  for (const ItemVote& iv : db.item_votes(item)) {
    // dp of the claim this source supports: 1-p for the validated claim,
    // -p for every other claim (§4.2.3).
    const double p = fusion.prob(item, iv.claim);
    const double dp = (iv.claim == true_claim) ? (1.0 - p) : (0.0 - p);
    deltas[iv.source] =
        dp / static_cast<double>(db.source_degree(iv.source));
  }
  return deltas;
}

std::vector<double> EstimateUpdatedProbs(const Database& db,
                                         const FusionResult& fusion, ItemId j,
                                         const AccuracyDeltas& deltas) {
  const std::vector<double>& probs = fusion.item_probs(j);
  if (probs.size() <= 1) return probs;
  const std::vector<double> g = ComputeClaimG(db, fusion, j, deltas);
  double g_bar = 0.0;
  for (ClaimIndex r = 0; r < probs.size(); ++r) g_bar += probs[r] * g[r];
  std::vector<double> updated(probs.size());
  for (ClaimIndex r = 0; r < probs.size(); ++r) {
    // Closed form of Eq. (10): dp_r = p_r (g(r) - sum_v p_v g(v)).
    updated[r] = ClampProb(probs[r] + probs[r] * (g[r] - g_bar));
  }
  return updated;
}

std::vector<double> EstimateUpdatedProbsLiteral(const Database& db,
                                                const FusionResult& fusion,
                                                ItemId j,
                                                const AccuracyDeltas& deltas) {
  const std::vector<double>& probs = fusion.item_probs(j);
  if (probs.size() <= 1) return probs;
  const std::vector<double> g = ComputeClaimG(db, fusion, j, deltas);
  // f(r, v) of Eq. (15) as exp(score(v) - score(r)) over the current
  // accuracies.
  const std::vector<double> scores =
      AccuFusion::ClaimLogScores(db, j, fusion.accuracies());
  std::vector<double> updated(probs.size());
  for (ClaimIndex r = 0; r < probs.size(); ++r) {
    double sum = 0.0;
    for (ClaimIndex v = 0; v < probs.size(); ++v) {
      const double f = std::exp(scores[v] - scores[r]);
      sum += f * (g[v] - g[r]);
    }
    const double dp = -(probs[r] * probs[r]) * sum;  // Eq. (10)/(18).
    updated[r] = ClampProb(probs[r] + dp);
  }
  return updated;
}

double ApproxMeuStrategy::ExpectedEntropyAfterValidation(
    const StrategyContext& ctx, ItemId item,
    const std::vector<bool>* impact_filter) {
  assert(ctx.graph != nullptr && "ApproxMeu requires ctx.graph");
  const Database& db = *ctx.db;
  const FusionResult& fusion = *ctx.fusion;

  const double total_entropy = fusion.TotalEntropy();
  std::vector<ItemId> neighbors;
  ctx.graph->CollectNeighbors(item, &neighbors);

  double expected = 0.0;
  for (ClaimIndex t = 0; t < db.num_claims(item); ++t) {
    const double pt = fusion.prob(item, t);
    if (pt <= 0.0) continue;
    const AccuracyDeltas deltas = ComputeAccuracyDeltas(db, fusion, item, t);
    // The validated item's entropy drops to zero; neighbours move by the
    // differential estimate; everything farther keeps its entropy
    // (Theorem 4.1 truncation).
    double estimate = total_entropy - fusion.ItemEntropy(item);
    for (ItemId j : neighbors) {
      if (ctx.priors->Has(j)) continue;  // Pinned distributions do not move.
      if (impact_filter != nullptr && !(*impact_filter)[j]) continue;
      if (db.num_claims(j) <= 1) continue;
      const std::vector<double> updated =
          EstimateUpdatedProbs(db, fusion, j, deltas);
      estimate += Entropy(updated) - fusion.ItemEntropy(j);
    }
    expected += pt * estimate;
  }
  return expected;
}

std::vector<double> ApproxMeuStrategy::ScoreCandidates(
    const StrategyContext& ctx, const std::vector<ItemId>& candidates,
    const std::vector<bool>* impact_filter, ThreadPool* pool,
    const ShardPartition* confine) {
  assert(ctx.graph != nullptr && "ApproxMeu requires ctx.graph");
  VERITAS_SPAN("strategy.approx_meu.score");
  static Counter* lookaheads =
      MetricsRegistry::Global().GetCounter("strategy.approx_meu.lookaheads");
  static Histogram* candidates_hist = MetricsRegistry::Global().GetHistogram(
      "strategy.approx_meu.candidates", MetricsRegistry::CountEdges());
  lookaheads->Add(candidates.size());
  candidates_hist->Observe(static_cast<double>(candidates.size()));
  const Database& db = *ctx.db;
  const FusionResult& fusion = *ctx.fusion;

  // Baseline entropies, computed once.
  std::vector<double> item_entropy(db.num_items(), 0.0);
  double total_entropy = 0.0;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    item_entropy[i] = fusion.ItemEntropy(i);
    total_entropy += item_entropy[i];
  }

  std::vector<double> gains(candidates.size(), 0.0);
  const ThreadPool::Body body = [&](std::size_t lane, std::size_t begin,
                                    std::size_t end) {
    (void)lane;
    std::vector<ItemId> neighbors;  // Per-chunk scratch.
    for (std::size_t idx = begin; idx < end; ++idx) {
      // Hard stop: abandon the scan; `gains` stays parallel to `candidates`
      // for TopKByScore (the session discards the round anyway).
      if (HardStopRequested(ctx.cancel)) return;
      const ItemId i = candidates[idx];
      const std::uint32_t home_shard =
          confine != nullptr ? confine->shard_of(i) : 0;
      ctx.graph->CollectNeighbors(i, &neighbors);
      double expected = 0.0;
      for (ClaimIndex t = 0; t < db.num_claims(i); ++t) {
        const double pt = fusion.prob(i, t);
        if (pt <= 0.0) continue;
        const AccuracyDeltas deltas = ComputeAccuracyDeltas(db, fusion, i, t);
        double estimate = total_entropy - item_entropy[i];
        for (ItemId j : neighbors) {
          if (ctx.priors->Has(j)) continue;
          if (impact_filter != nullptr && !(*impact_filter)[j]) continue;
          if (confine != nullptr && confine->shard_of(j) != home_shard) {
            continue;  // Stage-1 confinement: impact never leaves i's shard.
          }
          if (db.num_claims(j) <= 1) continue;
          const std::vector<double> updated =
              EstimateUpdatedProbs(db, fusion, j, deltas);
          estimate += Entropy(updated) - item_entropy[j];
        }
        expected += pt * estimate;
      }
      // Delta EU_i of Eq. (13).
      gains[idx] = total_entropy - expected;
    }
  };
  constexpr std::size_t kSerialCutoff = 32;
  if (pool == nullptr || pool->lanes() <= 1 ||
      candidates.size() < kSerialCutoff) {
    body(/*lane=*/0, 0, candidates.size());
  } else {
    pool->ParallelFor(candidates.size(), /*chunk_size=*/8, body);
  }
  return gains;
}

std::vector<ItemId> ApproxMeuStrategy::SelectBatch(const StrategyContext& ctx,
                                                   std::size_t batch) {
  static Counter* select_calls = MetricsRegistry::Global().GetCounter(
      "strategy.approx_meu.select_calls");
  select_calls->Add(1);
  const std::vector<ItemId> candidates = CandidateItems(ctx);
  if (num_threads_ > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
  const std::size_t shards =
      ctx.fusion_opts != nullptr ? ctx.fusion_opts->shards : 1;
  if (shards > 1 && ctx.delta != nullptr && candidates.size() > batch) {
    return SelectBatchSharded(ctx, candidates, batch, shards);
  }
  const std::vector<double> gains =
      ScoreCandidates(ctx, candidates, /*impact_filter=*/nullptr, pool_.get());
  return TopKByScore(candidates, gains, batch);
}

std::vector<ItemId> ApproxMeuStrategy::SelectBatchSharded(
    const StrategyContext& ctx, const std::vector<ItemId>& candidates,
    std::size_t batch, std::size_t shards) {
  VERITAS_SPAN("strategy.approx_meu.select_sharded");
  shard_plan_.Prepare(ctx.delta->compiled(), shards);
  const ShardPartition& partition = shard_plan_.partition();
  const std::size_t quota = ShardedScanPlan::MergeQuota(batch);

  // Stage 1: one pooled scan over ALL candidates with the partition as the
  // confinement predicate — each candidate's entropy impact only counts
  // neighbours in its own shard, so a head source's cross-shard fan-out is
  // never walked during the estimate pass. Confinement is a pure function
  // of (partition, i, j) and gains land in disjoint slots, so candidates of
  // different shards score concurrently on the pool's lanes and the result
  // is identical for any shard x thread combination (asserted by
  // fusion_sharded_scan_test). This replaces a serial per-shard loop that
  // rebuilt an O(num_items) membership bitmap per shard.
  const std::vector<double> estimates =
      ScoreCandidates(ctx, candidates, /*impact_filter=*/nullptr, pool_.get(),
                      &partition);

  // Coordinator merge, then stage 2: unfiltered exact re-score of the pool.
  const std::vector<ItemId> pool =
      MergeTopCandidatesPerShard(candidates, estimates, partition, quota);
  const std::vector<double> gains =
      ScoreCandidates(ctx, pool, /*impact_filter=*/nullptr, pool_.get());
  return TopKByScore(pool, gains, batch);
}

}  // namespace veritas
