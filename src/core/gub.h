// GUB — Greedy Upper Bound (§4.2.1 / §5 "Competing Methods" #3): the
// decision-theoretic framework evaluated with the *ground-truth* utility
// function of Definition 3. Infeasible in practice (truth is unknown); used
// as the upper-bound reference in Figures 3 and 4.
//
// Two modes:
//  * kOracle (default): pins the known-true claim, re-fuses, and scores the
//    resulting ground-truth utility — the deterministic greedy upper bound.
//  * kExpectation: the literal Definition 4 expectation, weighting each
//    hypothesized claim by its current fusion probability p_i^k.
// Requires ctx.model, ctx.fusion_opts and ctx.ground_truth.
#ifndef VERITAS_CORE_GUB_H_
#define VERITAS_CORE_GUB_H_

#include <memory>

#include "core/strategy.h"
#include "fusion/sharded_scan.h"
#include "util/thread_pool.h"

namespace veritas {

/// How GUB aggregates over an item's claims.
enum class GubMode {
  kOracle,       ///< Use the known true claim directly.
  kExpectation,  ///< Definition 4: expectation over claims weighted by p_i^k.
};

/// Ground-truth-utility VPI strategy (the paper's upper bound).
class GubStrategy : public Strategy {
 public:
  /// `num_threads` > 1 scores candidates concurrently on a persistent
  /// work-stealing pool (each candidate's lookahead re-fusion is
  /// independent); results are identical to the sequential run. Small rounds
  /// (< 32 candidates) run inline. Same thread-safety caveat as MeuStrategy.
  explicit GubStrategy(GubMode mode = GubMode::kOracle,
                       std::size_t num_threads = 1)
      : mode_(mode), num_threads_(num_threads == 0 ? 1 : num_threads) {}

  std::string name() const override { return "gub"; }

  std::vector<ItemId> SelectBatch(const StrategyContext& ctx,
                                  std::size_t batch) override;

  GubMode mode() const { return mode_; }
  std::size_t num_threads() const { return num_threads_; }

 private:
  /// Utility gain of hypothetically validating one candidate.
  double CandidateGain(const StrategyContext& ctx, ItemId item,
                       double current_utility) const;

  GubMode mode_;
  std::size_t num_threads_;
  std::unique_ptr<ThreadPool> pool_;  // Lazy; persists across rounds.
  /// Cached partition for FusionOptions::shards > 1. GUB's gains are exact
  /// and item-independent, so the per-shard top-batch merge provably selects
  /// the same items as the flat scan (every global top-batch item is in its
  /// own shard's top-batch).
  ShardedScanPlan shard_plan_;
};

}  // namespace veritas

#endif  // VERITAS_CORE_GUB_H_
