// Feedback oracles: simulate the user/crowd answering a validation request
// (paper §4.4 and §5 "Feedback Simulation"). An oracle converts the true
// claim of an item into the claim distribution that gets pinned as a prior.
//
//   PerfectOracle      — one-hot on the true claim (expert feedback).
//   ConfidenceOracle   — §4.4(1): p(true claim) = c; the remaining 1-c mass
//                        is spread uniformly over the other claims so the
//                        pinned vector is a distribution.
//   IncorrectOracle    — §4.4(2): with probability e the feedback is wrong:
//                        p(true claim) = 0 and the remaining claims get a
//                        uniform distribution; otherwise one-hot truth.
//   ConflictingOracle  — §4.4(3): for a fraction f of the items the crowd
//                        disagrees and reports p(true claim) = consensus with
//                        the rest spread uniformly; otherwise one-hot truth.
#ifndef VERITAS_CORE_ORACLE_H_
#define VERITAS_CORE_ORACLE_H_

#include <memory>
#include <string>
#include <vector>

#include "model/database.h"
#include "model/ground_truth.h"
#include "util/result.h"
#include "util/rng.h"

namespace veritas {

/// Produces the claim distribution pinned when `item` is validated.
class FeedbackOracle {
 public:
  virtual ~FeedbackOracle() = default;

  /// Short identifier ("perfect", "confidence:0.9", ...).
  virtual std::string name() const = 0;

  /// The feedback distribution over the claims of `item`. Fails when the
  /// ground truth for `item` is unknown. `rng` may be null for deterministic
  /// oracles (PerfectOracle, ConfidenceOracle).
  virtual Result<std::vector<double>> Answer(const Database& db, ItemId item,
                                             const GroundTruth& truth,
                                             Rng* rng) = 0;

  /// How many oracle calls the last Answer() consumed. Decorators that retry
  /// (RetryingOracle) report > 1; plain oracles answer in one.
  virtual std::size_t last_attempts() const { return 1; }

  /// Opaque single-line state for session checkpoint/resume. Stateless
  /// oracles (all of the §4.4 simulators — their randomness lives in the
  /// session Rng, which is checkpointed separately) return "". Stateful
  /// decorators (FlakyOracle's fault schedule) override both hooks so a
  /// resumed session replays the exact same fault sequence.
  virtual std::string SerializeState() const { return ""; }
  virtual Status RestoreState(const std::string& state) {
    (void)state;
    return Status::OK();
  }
};

/// Always reports the true claim with certainty.
class PerfectOracle : public FeedbackOracle {
 public:
  std::string name() const override { return "perfect"; }
  Result<std::vector<double>> Answer(const Database& db, ItemId item,
                                     const GroundTruth& truth,
                                     Rng* rng) override;
};

/// Reports the true claim with a fixed confidence c in (0, 1].
class ConfidenceOracle : public FeedbackOracle {
 public:
  explicit ConfidenceOracle(double confidence);
  std::string name() const override;
  Result<std::vector<double>> Answer(const Database& db, ItemId item,
                                     const GroundTruth& truth,
                                     Rng* rng) override;
  double confidence() const { return confidence_; }

 private:
  double confidence_;
};

/// With probability `error_rate` gives incorrect feedback (truth zeroed out,
/// uniform over the other claims). Requires rng.
class IncorrectOracle : public FeedbackOracle {
 public:
  explicit IncorrectOracle(double error_rate);
  std::string name() const override;
  Result<std::vector<double>> Answer(const Database& db, ItemId item,
                                     const GroundTruth& truth,
                                     Rng* rng) override;
  double error_rate() const { return error_rate_; }

 private:
  double error_rate_;
};

/// With probability `conflict_fraction` the crowd disagrees and reports the
/// true claim with probability `consensus` (rest uniform). Requires rng.
class ConflictingOracle : public FeedbackOracle {
 public:
  ConflictingOracle(double conflict_fraction, double consensus);
  std::string name() const override;
  Result<std::vector<double>> Answer(const Database& db, ItemId item,
                                     const GroundTruth& truth,
                                     Rng* rng) override;
  double conflict_fraction() const { return conflict_fraction_; }
  double consensus() const { return consensus_; }

 private:
  double conflict_fraction_;
  double consensus_;
};

/// Helper shared by the oracles: distribution with `p_true` on `true_claim`
/// and the remaining mass spread uniformly over the other claims. A
/// single-claim item always yields {1.0}.
std::vector<double> SpreadDistribution(std::size_t num_claims,
                                       ClaimIndex true_claim, double p_true);

/// Creates an oracle from a spec string: "perfect", "confidence:<c>",
/// "incorrect:<rate>", "conflicting:<fraction>,<consensus>". Unknown specs
/// yield NotFound; malformed parameters yield InvalidArgument.
Result<std::unique_ptr<FeedbackOracle>> MakeOracle(const std::string& spec);

}  // namespace veritas

#endif  // VERITAS_CORE_ORACLE_H_
