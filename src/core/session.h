// FeedbackSession: the sequential validation loop of the paper's evaluation
// (§5): fuse -> measure -> let the strategy pick the next item(s) -> ask the
// oracle -> pin the feedback as a prior -> repeat. Validations are retained,
// so the metrics show the cumulative gain of all feedback acquired so far.
#ifndef VERITAS_CORE_SESSION_H_
#define VERITAS_CORE_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/oracle.h"
#include "core/strategy.h"
#include "fusion/fusion_model.h"
#include "model/ground_truth.h"
#include "model/streaming_database.h"
#include "util/cancellation.h"
#include "util/resource_budget.h"
#include "util/result.h"

namespace veritas {

/// Streaming ingestion hookup (see SessionOptions::streaming). When active,
/// the session pulls one batch from `feed` per validation round — ingest and
/// validation interleave, and already-validated items stay pinned across
/// epochs (a pin survives appends; new claims on a pinned item get
/// probability 0). None of the pointers are owned.
struct StreamingSessionConfig {
  /// The live database the session runs against. Must be the same object
  /// whose db() was passed to the FeedbackSession constructor.
  StreamingDatabase* stream = nullptr;
  /// Source of ingest batches; exhausted feeds simply stop ticking.
  ObservationFeed* feed = nullptr;
  /// Mutable view of the ground truth the session reads, so streamed truth
  /// rows can land. Must alias the constructor's `truth` reference. Truth
  /// rows naming items that have not arrived yet are deferred and retried
  /// after every later batch.
  GroundTruth* truth = nullptr;
  /// Restrict validation candidates to items with known truth. Set this when
  /// the oracle hard-fails on unknown truth (GroundTruthOracle): a streamed
  /// item then waits for its truth row instead of aborting the session.
  bool require_known_truth = false;
  /// When set, replaces the stream's compaction policy at session start —
  /// how the CLI/replay `--compact-tail-fraction` / `--compact-min-tail`
  /// flags reach the database the session ticks. Unset keeps whatever policy
  /// the StreamingDatabase was constructed with.
  std::optional<StreamingOptions> compaction;

  bool active() const { return stream != nullptr; }
};

/// Session knobs.
struct SessionOptions {
  FusionOptions fusion;
  /// Stop after this many items have been validated (default: all).
  std::size_t max_validations = std::numeric_limits<std::size_t>::max();
  /// Items validated per round before re-fusing (§4.3 "Batch of Actions").
  std::size_t batch_size = 1;
  /// Forwarded to StrategyContext (see Strategy).
  bool include_singletons = false;
  /// Warm-start each re-fusion from the previous accuracies.
  bool warm_start = true;
  /// Record per-step metrics (disable for pure timing runs).
  bool record_metrics = true;
  /// Graceful degradation: when an oracle answer ultimately fails with a
  /// transient/abstain status (Unavailable, DeadlineExceeded, Abstained),
  /// skip the item — record it and move to the strategy's next-best
  /// suggestion — instead of aborting the whole run. Hard errors (unknown
  /// ground truth, out-of-range ids) still abort.
  bool skip_unanswerable = true;
  /// When a re-fusion reports converged() == false, roll back to the
  /// last-good FusionResult instead of using the partial result. Off by
  /// default: non-converged results are still usable (§3), and rolling back
  /// freezes the beliefs until the next validation. Non-finite re-fusions
  /// are always rolled back regardless of this flag.
  bool rollback_on_nonconvergence = false;
  /// Write a resumable snapshot to this path ("" = no checkpointing) every
  /// `checkpoint_every_rounds` validation rounds and at completion.
  std::string checkpoint_path;
  std::size_t checkpoint_every_rounds = 1;
  /// Resume from this checkpoint when the file exists; a missing file means
  /// a fresh start (so the same flags work for the first and the restarted
  /// invocation). Corrupt checkpoints recover from the rotated chain when a
  /// valid older generation exists; otherwise they fail the run.
  std::string resume_path;
  /// Cooperative cancellation (not owned; may be null). A graceful stop
  /// (CancellationToken::RequestStop, e.g. from a SIGINT handler) is
  /// observed at round boundaries: the in-flight round completes bit-exactly,
  /// is checkpointed, and Run returns Status::DeadlineExceeded — so resuming
  /// reproduces the uninterrupted run's trace exactly. A hard stop (second
  /// RequestStop) additionally bails the fusion iteration and strategy
  /// lookahead loops; the in-flight round is discarded and the last
  /// checkpoint on disk remains the resume point.
  const CancellationToken* cancel = nullptr;
  /// Wall-clock budget for the whole run. Expiry acts like a graceful stop:
  /// finish the round, checkpoint, return Status::DeadlineExceeded.
  Deadline deadline;
  /// Streaming ingestion (inactive unless `streaming.stream` is set).
  /// Incompatible with checkpoint/resume: a checkpoint snapshots fusion
  /// state against a fixed database, which a stream invalidates.
  StreamingSessionConfig streaming;
  /// Resource budget (approximate resident bytes + per-run round quota;
  /// zero fields = unlimited). Checked at round boundaries after at least
  /// one round has completed this run — so every admission makes progress
  /// and evict/resume cycles terminate. A breach acts like a graceful stop
  /// except for the status: checkpoint, then return
  /// Status::ResourceExhausted (the supervisor's eviction signal; resuming
  /// from the checkpoint continues bit-exactly).
  ResourceBudget budget;
  /// Per-tenant observability: when non-empty (the supervisor sets the
  /// session id), round timings are additionally recorded under
  /// "session.step_seconds.<label>" so one slow tenant is attributable in a
  /// shared-process metrics snapshot. "" keeps only the aggregate series.
  std::string metrics_label;
};

/// Metrics after one validation round.
struct SessionStep {
  std::size_t num_validated = 0;      ///< Cumulative items validated.
  std::vector<ItemId> items;          ///< Items validated this round.
  std::vector<ItemId> skipped;        ///< Items skipped this round (oracle
                                      ///< failure after retries).
  std::size_t oracle_retries = 0;     ///< Oracle attempts beyond the first.
  double distance = 0.0;              ///< distance_to_ground_truth after.
  double uncertainty = 0.0;           ///< Total entropy after.
  double select_seconds = 0.0;        ///< Time the strategy took to decide.
  double fuse_seconds = 0.0;          ///< Time to re-fuse with the feedback.
};

/// Full trace of a session.
struct SessionTrace {
  double initial_distance = 0.0;
  double initial_uncertainty = 0.0;
  std::vector<SessionStep> steps;
  FusionResult final_fusion;
  PriorSet priors;  ///< All feedback acquired.
  /// Items the oracle ultimately failed to answer, in skip order.
  std::vector<ItemId> skipped_items;
  /// Oracle attempts beyond the first, summed over the whole session.
  std::size_t total_oracle_retries = 0;
  /// Re-fusions that reported converged() == false.
  std::size_t fusion_nonconverged_rounds = 0;
  /// Re-fusions discarded in favor of the last-good result (non-finite
  /// output, or non-convergence with rollback_on_nonconvergence set).
  std::size_t fusion_fallback_rounds = 0;
  /// Streaming ingest accounting (all zero for non-streaming sessions).
  std::size_t ingest_batches = 0;
  std::size_t ingested_observations = 0;  ///< Fresh votes appended.
  std::size_t ingest_revisions = 0;       ///< Last-write-wins rewrites.
  std::size_t truths_applied = 0;         ///< Streamed truth rows landed.
  std::size_t truths_deferred = 0;        ///< Rows still waiting at the end.
  std::size_t compactions = 0;            ///< Tail-fold rebuilds of the view.
  std::uint64_t final_epoch = 0;          ///< View epoch after the last tick.

  /// Relative change of distance after `steps[idx]` vs the initial value, in
  /// percent (negative = improvement); mirrors the paper's Figure 3 y-axis.
  double DistanceReductionPercent(std::size_t idx) const;
  /// Same for uncertainty (Figure 4 y-axis).
  double UncertaintyReductionPercent(std::size_t idx) const;
  /// Mean strategy decision time per round, seconds (Table 11).
  double MeanSelectSeconds() const;
};

/// Drives a strategy + oracle against a database until the validation budget
/// or the candidate pool is exhausted.
class FeedbackSession {
 public:
  /// All referenced objects must outlive the session. `rng` may be null when
  /// neither the strategy nor the oracle needs randomness.
  FeedbackSession(const Database& db, const FusionModel& model,
                  Strategy* strategy, FeedbackOracle* oracle,
                  const GroundTruth& truth, SessionOptions options,
                  Rng* rng);

  /// Runs the loop. Transient oracle failures skip the affected item when
  /// options.skip_unanswerable is set (the default); hard failures — unknown
  /// ground truth, out-of-range ids — abort the run.
  Result<SessionTrace> Run();

 private:
  const Database& db_;
  const FusionModel& model_;
  Strategy* strategy_;
  FeedbackOracle* oracle_;
  const GroundTruth& truth_;
  SessionOptions options_;
  Rng* rng_;
};

}  // namespace veritas

#endif  // VERITAS_CORE_SESSION_H_
