#include "core/sequential_meu.h"

#include <algorithm>
#include <cassert>

#include "core/meu.h"

namespace veritas {

namespace {

// Expected entropy of the best single follow-up validation from the state
// (db, priors, fusion): min over the `inner_beam` most uncertain
// unvalidated items of the one-step expected entropy.
double BestFollowUpEntropy(const StrategyContext& outer, const PriorSet& priors,
                           const FusionResult& fusion,
                           std::size_t inner_beam) {
  StrategyContext ctx = outer;
  ctx.priors = &priors;
  ctx.fusion = &fusion;

  // Inner candidates: the most uncertain items of the hypothesized state
  // (a US-style preselection keeps the inner loop cheap).
  std::vector<ItemId> candidates = CandidateItems(ctx);
  if (candidates.empty()) return fusion.TotalEntropy();
  std::vector<double> entropies;
  entropies.reserve(candidates.size());
  for (ItemId j : candidates) entropies.push_back(fusion.ItemEntropy(j));
  const std::vector<ItemId> beam =
      TopKByScore(candidates, entropies, inner_beam);

  double best = fusion.TotalEntropy();  // "Do nothing" upper bound.
  if (ctx.delta != nullptr && ctx.warm_start_lookahead) {
    const DeltaFusionEngine::BaseState base = ctx.delta->PrepareBase(fusion);
    DeltaFusionEngine::Workspace ws;
    for (ItemId j : beam) {
      best = std::min(
          best, MeuStrategy::ExpectedEntropyAfterValidation(ctx, j, base, ws));
    }
    return best;
  }
  for (ItemId j : beam) {
    const double expected =
        MeuStrategy::ExpectedEntropyAfterValidation(ctx, j);
    best = std::min(best, expected);
  }
  return best;
}

}  // namespace

double SequentialMeuStrategy::TwoStepExpectedEntropy(
    const StrategyContext& ctx, ItemId item, std::size_t inner_beam) {
  assert(ctx.model != nullptr && ctx.fusion_opts != nullptr &&
         "SequentialMeu requires ctx.model and ctx.fusion_opts");
  const Database& db = *ctx.db;
  double expected = 0.0;
  for (ClaimIndex k = 0; k < db.num_claims(item); ++k) {
    const double pk = ctx.fusion->prob(item, k);
    if (pk <= 0.0) continue;
    PriorSet lookahead = *ctx.priors;
    lookahead.SetExact(db, item, k);
    const FusionResult state =
        ctx.delta != nullptr && ctx.warm_start_lookahead
            ? ctx.delta->FuseWithPins(*ctx.fusion, lookahead, {item})
            : ctx.model->Fuse(db, lookahead, *ctx.fusion_opts,
                              ctx.warm_start_lookahead ? ctx.fusion : nullptr);
    expected += pk * BestFollowUpEntropy(ctx, lookahead, state, inner_beam);
  }
  return expected;
}

std::vector<ItemId> SequentialMeuStrategy::SelectBatch(
    const StrategyContext& ctx, std::size_t batch) {
  const std::vector<ItemId> candidates = CandidateItems(ctx);
  if (candidates.empty()) return {};
  const double current_entropy = ctx.fusion->TotalEntropy();

  // Depth-1 preselection by myopic gain, on MEU's pooled scan engine.
  // Pruning is disabled: the tail of the returned batch is ordered by these
  // gains, so every one must be exact, not an upper bound. (Hard stops
  // truncate the scan inside the scanner; the session discards the round.)
  const std::vector<double> myopic_gains = myopic_.ScoreCandidateGains(
      ctx, candidates, options_.beam_width, /*allow_prune=*/false);
  const std::vector<ItemId> beam =
      TopKByScore(candidates, myopic_gains, options_.beam_width);

  // Depth-2 scoring of the beam.
  std::vector<double> two_step_gains;
  two_step_gains.reserve(beam.size());
  for (ItemId i : beam) {
    if (HardStopRequested(ctx.cancel)) break;
    two_step_gains.push_back(
        current_entropy -
        TwoStepExpectedEntropy(ctx, i, options_.inner_beam));
  }
  two_step_gains.resize(beam.size(), 0.0);
  std::vector<ItemId> ranked_beam =
      TopKByScore(beam, two_step_gains, beam.size());

  // Beam items first (two-step order), then the rest by myopic gain.
  std::vector<ItemId> out;
  out.reserve(std::min(batch, candidates.size()));
  for (ItemId i : ranked_beam) {
    if (out.size() >= batch) return out;
    out.push_back(i);
  }
  const std::vector<ItemId> myopic_order =
      TopKByScore(candidates, myopic_gains, candidates.size());
  for (ItemId i : myopic_order) {
    if (out.size() >= batch) break;
    if (std::find(out.begin(), out.end(), i) == out.end()) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace veritas
