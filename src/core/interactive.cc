#include "core/interactive.h"

namespace veritas {

InteractiveSession::InteractiveSession(const Database& db,
                                       const FusionModel& model,
                                       Strategy* strategy,
                                       FusionOptions fusion_options, Rng* rng)
    : db_(db),
      model_(model),
      strategy_(strategy),
      fusion_options_(fusion_options),
      rng_(rng),
      graph_(db) {
  strategy_->Reset();
  fusion_ = model_.Fuse(db_, priors_, fusion_options_);
}

StrategyContext InteractiveSession::MakeContext() {
  StrategyContext ctx;
  ctx.db = &db_;
  ctx.fusion = &fusion_;
  ctx.priors = &priors_;
  ctx.model = &model_;
  ctx.fusion_opts = &fusion_options_;
  ctx.graph = &graph_;
  ctx.rng = rng_;
  ctx.excluded = &unanswerable_;
  return ctx;
}

void InteractiveSession::Refuse() {
  FusionResult next = model_.Fuse(db_, priors_, fusion_options_, &fusion_);
  if (!next.converged()) ++nonconverged_fusions_;
  if (!next.AllFinite()) {
    // Keep the last-good fusion: a NaN readout would corrupt every
    // probability the UI displays and every future suggestion.
    ++fusion_fallbacks_;
    return;
  }
  fusion_ = std::move(next);
}

Result<Suggestion> InteractiveSession::NextSuggestion() {
  StrategyContext ctx = MakeContext();
  const ItemId item = strategy_->SelectNext(ctx);
  if (item == kInvalidItem) {
    return Status::NotFound("no unvalidated conflicting items remain");
  }
  Suggestion suggestion;
  suggestion.item = item;
  suggestion.item_name = db_.item(item).name;
  for (ClaimIndex k = 0; k < db_.num_claims(item); ++k) {
    suggestion.claim_values.push_back(db_.item(item).claims[k].value);
    suggestion.current_probs.push_back(fusion_.prob(item, k));
  }
  return suggestion;
}

std::vector<Suggestion> InteractiveSession::NextSuggestions(std::size_t n) {
  StrategyContext ctx = MakeContext();
  const std::vector<ItemId> batch = strategy_->SelectBatch(ctx, n);
  std::vector<Suggestion> out;
  out.reserve(batch.size());
  for (ItemId item : batch) {
    Suggestion suggestion;
    suggestion.item = item;
    suggestion.item_name = db_.item(item).name;
    for (ClaimIndex k = 0; k < db_.num_claims(item); ++k) {
      suggestion.claim_values.push_back(db_.item(item).claims[k].value);
      suggestion.current_probs.push_back(fusion_.prob(item, k));
    }
    out.push_back(std::move(suggestion));
  }
  return out;
}

Status InteractiveSession::SubmitExactFeedback(ItemId item, ClaimIndex claim) {
  VERITAS_RETURN_IF_ERROR(priors_.SetExact(db_, item, claim));
  Refuse();
  return Status::OK();
}

Status InteractiveSession::SubmitExactFeedback(const std::string& item,
                                               const std::string& value) {
  VERITAS_ASSIGN_OR_RETURN(ItemId item_id, db_.FindItem(item));
  VERITAS_ASSIGN_OR_RETURN(ClaimIndex claim, db_.FindClaim(item_id, value));
  return SubmitExactFeedback(item_id, claim);
}

Status InteractiveSession::SubmitFeedback(ItemId item,
                                          std::vector<double> distribution) {
  VERITAS_RETURN_IF_ERROR(
      priors_.SetDistribution(db_, item, std::move(distribution)));
  Refuse();
  return Status::OK();
}

Status InteractiveSession::MarkUnanswerable(ItemId item) {
  if (item >= db_.num_items()) {
    return Status::OutOfRange("unanswerable: item id out of range");
  }
  unanswerable_.insert(item);
  return Status::OK();
}

Status InteractiveSession::RetractFeedback(ItemId item) {
  if (!priors_.Has(item)) {
    return Status::NotFound("no feedback recorded for item id " +
                            std::to_string(item));
  }
  priors_.Erase(item);
  // Retraction invalidates the warm start less gracefully; re-fuse cold to
  // avoid anchoring on the retracted knowledge.
  fusion_ = model_.Fuse(db_, priors_, fusion_options_);
  return Status::OK();
}

}  // namespace veritas
