// Checkpoint/resume for long feedback sessions. A session that asks a real
// expert for hundreds of validations runs for hours; if the process dies the
// acquired feedback must not die with it. A SessionCheckpoint serializes
// everything needed to continue *exactly* where the session stopped — the
// validated PriorSet, the per-step metrics recorded so far, the current
// FusionResult (so warm-started re-fusions resume from the identical state),
// the session Rng stream and any stateful oracle's fault schedule — to a
// versioned text file. Doubles round-trip bit-exactly (hex-float encoding),
// so a killed-and-resumed run produces a SessionTrace identical to an
// uninterrupted one under the same seed.
//
// Durability (format v2): the payload carries a CRC32C + length trailer, so
// truncation and bit flips are detected at load time instead of being parsed
// into garbage state. Saves rotate a recovery chain (`path` -> `path.1` ->
// `path.2`) before the atomic fsync'd replace; loads walk the chain and
// return the newest generation that verifies, so a corrupted head checkpoint
// costs at most the rounds between two saves, never the whole session.
#ifndef VERITAS_CORE_SESSION_CHECKPOINT_H_
#define VERITAS_CORE_SESSION_CHECKPOINT_H_

#include <string>
#include <vector>

#include "core/session.h"
#include "fusion/fusion_result.h"
#include "fusion/priors.h"
#include "model/database.h"
#include "util/result.h"

namespace veritas {

/// Resumable snapshot of a FeedbackSession mid-run.
struct SessionCheckpoint {
  /// Bumped whenever the on-disk layout changes; loaders reject versions
  /// they do not understand. v1 files (no checksum trailer) still load.
  static constexpr int kFormatVersion = 2;

  /// Previous on-disk generations kept as a recovery chain (`path.1`,
  /// `path.2`, ... up to this count).
  static constexpr int kRecoveryGenerations = 2;

  std::size_t num_validated = 0;
  double initial_distance = 0.0;
  double initial_uncertainty = 0.0;
  std::size_t total_oracle_retries = 0;
  std::size_t fusion_nonconverged_rounds = 0;
  std::size_t fusion_fallback_rounds = 0;
  std::vector<SessionStep> steps;
  std::vector<ItemId> skipped_items;
  PriorSet priors;
  /// The session's current (last-good) fusion output; resuming warm-starts
  /// from this instead of re-fusing cold, which keeps resumed traces
  /// bit-identical to uninterrupted ones.
  FusionResult fusion;
  /// Serialized session Rng engine ("" when the session has no Rng).
  std::string rng_state;
  /// Opaque oracle state (see FeedbackOracle::SerializeState; "").
  std::string oracle_state;
};

/// Writes `checkpoint` to `path` atomically (unique temp file + fsync +
/// rename + parent-directory fsync), so a crash at any point leaves either
/// the previous or the new checkpoint, never a torn one. Before the replace,
/// existing generations rotate down the recovery chain: `path` -> `path.1`
/// -> ... -> `path.<keep_generations>`. Pass keep_generations = 0 to disable
/// rotation (single-file behaviour of format v1).
Status SaveSessionCheckpoint(const SessionCheckpoint& checkpoint,
                             const std::string& path,
                             int keep_generations =
                                 SessionCheckpoint::kRecoveryGenerations);

/// Reads a checkpoint back. `db` validates item ids and claim counts — a
/// checkpoint only makes sense against the dataset that produced it.
/// Verifies the v2 checksum trailer, then walks the recovery chain (`path`,
/// `path.1`, `path.2`) on corruption or truncation and returns the newest
/// generation that verifies, bumping the `checkpoint.recovered` metric when
/// the head was not usable. NotFound when no generation exists;
/// InvalidArgument (the head's error) when generations exist but none
/// verifies.
Result<SessionCheckpoint> LoadSessionCheckpoint(const std::string& path,
                                                const Database& db);

}  // namespace veritas

#endif  // VERITAS_CORE_SESSION_CHECKPOINT_H_
