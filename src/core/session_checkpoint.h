// Checkpoint/resume for long feedback sessions. A session that asks a real
// expert for hundreds of validations runs for hours; if the process dies the
// acquired feedback must not die with it. A SessionCheckpoint serializes
// everything needed to continue *exactly* where the session stopped — the
// validated PriorSet, the per-step metrics recorded so far, the current
// FusionResult (so warm-started re-fusions resume from the identical state),
// the session Rng stream and any stateful oracle's fault schedule — to a
// versioned text file. Doubles round-trip bit-exactly (hex-float encoding),
// so a killed-and-resumed run produces a SessionTrace identical to an
// uninterrupted one under the same seed.
#ifndef VERITAS_CORE_SESSION_CHECKPOINT_H_
#define VERITAS_CORE_SESSION_CHECKPOINT_H_

#include <string>
#include <vector>

#include "core/session.h"
#include "fusion/fusion_result.h"
#include "fusion/priors.h"
#include "model/database.h"
#include "util/result.h"

namespace veritas {

/// Resumable snapshot of a FeedbackSession mid-run.
struct SessionCheckpoint {
  /// Bumped whenever the on-disk layout changes; loaders reject versions
  /// they do not understand.
  static constexpr int kFormatVersion = 1;

  std::size_t num_validated = 0;
  double initial_distance = 0.0;
  double initial_uncertainty = 0.0;
  std::size_t total_oracle_retries = 0;
  std::size_t fusion_nonconverged_rounds = 0;
  std::size_t fusion_fallback_rounds = 0;
  std::vector<SessionStep> steps;
  std::vector<ItemId> skipped_items;
  PriorSet priors;
  /// The session's current (last-good) fusion output; resuming warm-starts
  /// from this instead of re-fusing cold, which keeps resumed traces
  /// bit-identical to uninterrupted ones.
  FusionResult fusion;
  /// Serialized session Rng engine ("" when the session has no Rng).
  std::string rng_state;
  /// Opaque oracle state (see FeedbackOracle::SerializeState; "").
  std::string oracle_state;
};

/// Writes `checkpoint` to `path` atomically (temp file + rename), so a crash
/// mid-write leaves the previous checkpoint intact.
Status SaveSessionCheckpoint(const SessionCheckpoint& checkpoint,
                             const std::string& path);

/// Reads a checkpoint back. `db` validates item ids and claim counts — a
/// checkpoint only makes sense against the dataset that produced it.
/// NotFound when `path` does not exist; InvalidArgument on version mismatch
/// or corruption.
Result<SessionCheckpoint> LoadSessionCheckpoint(const std::string& path,
                                                const Database& db);

}  // namespace veritas

#endif  // VERITAS_CORE_SESSION_CHECKPOINT_H_
