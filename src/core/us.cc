#include "core/us.h"

namespace veritas {

std::vector<ItemId> UsStrategy::SelectBatch(const StrategyContext& ctx,
                                            std::size_t batch) {
  const std::vector<ItemId> candidates = CandidateItems(ctx);
  std::vector<double> scores;
  scores.reserve(candidates.size());
  for (ItemId i : candidates) scores.push_back(ctx.fusion->ItemEntropy(i));
  return TopKByScore(candidates, scores, batch);
}

}  // namespace veritas
