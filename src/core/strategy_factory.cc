#include "core/strategy_factory.h"

#include <cstdlib>

#include "core/approx_meu.h"
#include "core/gub.h"
#include "core/hybrid.h"
#include "core/meu.h"
#include "core/qbc.h"
#include "core/random_strategy.h"
#include "core/sequential_meu.h"
#include "core/us.h"
#include "util/strings.h"

namespace veritas {

Result<std::unique_ptr<Strategy>> MakeStrategy(const std::string& name,
                                               std::size_t num_threads) {
  if (name == "random") {
    return std::unique_ptr<Strategy>(new RandomStrategy());
  }
  if (name == "qbc") {
    return std::unique_ptr<Strategy>(new QbcStrategy());
  }
  if (name == "us") {
    return std::unique_ptr<Strategy>(new UsStrategy());
  }
  if (name == "meu") {
    return std::unique_ptr<Strategy>(new MeuStrategy(num_threads));
  }
  if (name == "approx_meu") {
    return std::unique_ptr<Strategy>(new ApproxMeuStrategy(num_threads));
  }
  if (name == "meu2") {
    return std::unique_ptr<Strategy>(
        new SequentialMeuStrategy(SequentialMeuOptions{}, num_threads));
  }
  if (name == "gub") {
    return std::unique_ptr<Strategy>(
        new GubStrategy(GubMode::kOracle, num_threads));
  }
  if (name == "gub_expectation") {
    return std::unique_ptr<Strategy>(
        new GubStrategy(GubMode::kExpectation, num_threads));
  }
  if (StartsWith(name, "approx_meu_k:")) {
    const std::string arg = name.substr(std::string("approx_meu_k:").size());
    char* end = nullptr;
    const double k = std::strtod(arg.c_str(), &end);
    if (end == arg.c_str() || *end != '\0' || k <= 0.0 || k > 100.0) {
      return Status::InvalidArgument("bad approx_meu_k percentage: " + arg);
    }
    return std::unique_ptr<Strategy>(new ApproxMeuKStrategy(k, num_threads));
  }
  return Status::NotFound("unknown strategy: " + name);
}

std::vector<std::string> StrategyNames() {
  return {"random",          "qbc", "us",
          "meu",             "meu2", "approx_meu",
          "approx_meu_k:10", "gub",  "gub_expectation"};
}

}  // namespace veritas
