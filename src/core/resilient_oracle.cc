#include "core/resilient_oracle.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace veritas {

FlakyOracle::FlakyOracle(FeedbackOracle* inner, FaultPlan plan,
                         std::uint64_t seed)
    : inner_(inner), injector_(seed) {
  injector_.SetPlan(kSite, plan);
}

FlakyOracle::FlakyOracle(std::unique_ptr<FeedbackOracle> inner, FaultPlan plan,
                         std::uint64_t seed)
    : inner_(inner.get()), owned_(std::move(inner)), injector_(seed) {
  injector_.SetPlan(kSite, plan);
}

std::string FlakyOracle::name() const {
  return "flaky(" + inner_->name() + ")";
}

Result<std::vector<double>> FlakyOracle::Answer(const Database& db,
                                                ItemId item,
                                                const GroundTruth& truth,
                                                Rng* rng) {
  // Bespoke per-oracle counters stay (tests and callers consume them), but
  // the registry carries the fleet-wide view the same numbers roll into.
  static Counter* calls_counter =
      MetricsRegistry::Global().GetCounter("oracle.flaky.calls");
  static Counter* faults_counter =
      MetricsRegistry::Global().GetCounter("oracle.flaky.faults_injected");
  const FaultOutcome outcome = injector_.Next(kSite);
  simulated_latency_ += outcome.latency_seconds;
  calls_counter->Add(1);
  if (outcome.kind != FaultKind::kNone) faults_counter->Add(1);
  switch (outcome.kind) {
    case FaultKind::kUnavailable:
      return Status::Unavailable("injected fault: oracle unavailable for '" +
                                 db.item(item).name + "'");
    case FaultKind::kTimeout:
      return Status::DeadlineExceeded(
          "injected fault: oracle timed out on '" + db.item(item).name + "'");
    case FaultKind::kAbstain:
      return Status::Abstained("injected fault: oracle abstained on '" +
                               db.item(item).name + "'");
    case FaultKind::kNone:
      break;  // Possibly a pure latency spike; answer normally.
  }
  return inner_->Answer(db, item, truth, rng);
}

std::string FlakyOracle::SerializeState() const {
  // The '|' separator cannot appear in injector state (space-separated
  // tokens) so the inner oracle's state survives nesting.
  return injector_.SerializeState() + "|" + inner_->SerializeState();
}

Status FlakyOracle::RestoreState(const std::string& state) {
  const std::size_t bar = state.find('|');
  if (bar == std::string::npos) {
    return Status::InvalidArgument("flaky oracle state: missing separator");
  }
  VERITAS_RETURN_IF_ERROR(injector_.RestoreState(state.substr(0, bar)));
  return inner_->RestoreState(state.substr(bar + 1));
}

RetryingOracle::RetryingOracle(FeedbackOracle* inner, RetryPolicy policy)
    : inner_(inner), policy_(std::move(policy)) {}

RetryingOracle::RetryingOracle(std::unique_ptr<FeedbackOracle> inner,
                               RetryPolicy policy)
    : inner_(inner.get()), owned_(std::move(inner)), policy_(std::move(policy)) {}

std::string RetryingOracle::name() const {
  return "retrying(" + inner_->name() + ")";
}

Result<std::vector<double>> RetryingOracle::Answer(const Database& db,
                                                   ItemId item,
                                                   const GroundTruth& truth,
                                                   Rng* rng) {
  VERITAS_SPAN("oracle.answer");
  static Counter* attempts_counter =
      MetricsRegistry::Global().GetCounter("oracle.retry.attempts");
  static Counter* retries_counter =
      MetricsRegistry::Global().GetCounter("oracle.retry.retries");
  static Counter* exhausted_counter =
      MetricsRegistry::Global().GetCounter("oracle.retry.exhausted");
  static Histogram* backoff_hist =
      MetricsRegistry::Global().GetHistogram("oracle.retry.backoff_seconds");
  RetryStats call_stats;
  Result<std::vector<double>> result = RetryCall<std::vector<double>>(
      policy_,
      [&] { return inner_->Answer(db, item, truth, rng); },
      rng, &call_stats);
  last_attempts_ = call_stats.attempts;
  stats_.total_attempts += call_stats.attempts;
  stats_.total_retries += call_stats.attempts - 1;
  stats_.total_backoff_seconds += call_stats.total_backoff_seconds;
  if (!result.ok()) ++stats_.exhausted;
  attempts_per_item_[item] += call_stats.attempts;
  attempts_counter->Add(call_stats.attempts);
  retries_counter->Add(call_stats.attempts - 1);
  if (!result.ok()) exhausted_counter->Add(1);
  if (call_stats.total_backoff_seconds > 0.0) {
    backoff_hist->Observe(call_stats.total_backoff_seconds);
  }
  return result;
}

std::string RetryingOracle::SerializeState() const {
  return inner_->SerializeState();
}

Status RetryingOracle::RestoreState(const std::string& state) {
  return inner_->RestoreState(state);
}

}  // namespace veritas
