#include "core/qbc.h"

namespace veritas {

std::vector<ItemId> QbcStrategy::SelectBatch(const StrategyContext& ctx,
                                             std::size_t batch) {
  const Database& db = *ctx.db;
  if (ranked_.empty() || ranked_db_ != &db || ranked_epoch_ != ctx.db_epoch ||
      ranked_includes_singletons_ != ctx.include_singletons) {
    std::vector<ItemId> candidates;
    for (ItemId i = 0; i < db.num_items(); ++i) {
      if (!ctx.include_singletons && !db.HasConflict(i)) continue;
      candidates.push_back(i);
    }
    std::vector<double> scores;
    scores.reserve(candidates.size());
    for (ItemId i : candidates) scores.push_back(VoteEntropy(db, i));
    ranked_ = TopKByScore(candidates, scores, candidates.size());
    ranked_db_ = &db;
    ranked_epoch_ = ctx.db_epoch;
    ranked_includes_singletons_ = ctx.include_singletons;
  }
  std::vector<ItemId> out;
  for (ItemId i : ranked_) {
    if (out.size() >= batch) break;
    if (ctx.priors->Has(i)) continue;
    if (ctx.excluded != nullptr && ctx.excluded->count(i) > 0) continue;
    if (ctx.require_known_truth && ctx.ground_truth != nullptr &&
        !ctx.ground_truth->Knows(i)) {
      continue;
    }
    out.push_back(i);
  }
  return out;
}

}  // namespace veritas
