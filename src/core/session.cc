#include "core/session.h"

#include <algorithm>

#include "core/metrics.h"
#include "util/timer.h"

namespace veritas {

double SessionTrace::DistanceReductionPercent(std::size_t idx) const {
  if (idx >= steps.size() || initial_distance == 0.0) return 0.0;
  return (steps[idx].distance - initial_distance) / initial_distance * 100.0;
}

double SessionTrace::UncertaintyReductionPercent(std::size_t idx) const {
  if (idx >= steps.size() || initial_uncertainty == 0.0) return 0.0;
  return (steps[idx].uncertainty - initial_uncertainty) /
         initial_uncertainty * 100.0;
}

double SessionTrace::MeanSelectSeconds() const {
  if (steps.empty()) return 0.0;
  double total = 0.0;
  for (const SessionStep& s : steps) total += s.select_seconds;
  return total / static_cast<double>(steps.size());
}

FeedbackSession::FeedbackSession(const Database& db, const FusionModel& model,
                                 Strategy* strategy, FeedbackOracle* oracle,
                                 const GroundTruth& truth,
                                 SessionOptions options, Rng* rng)
    : db_(db),
      model_(model),
      strategy_(strategy),
      oracle_(oracle),
      truth_(truth),
      options_(options),
      rng_(rng) {}

Result<SessionTrace> FeedbackSession::Run() {
  SessionTrace trace;
  strategy_->Reset();
  const ItemGraph graph(db_);

  FusionResult fusion = model_.Fuse(db_, trace.priors, options_.fusion);
  trace.initial_distance = DistanceToGroundTruth(db_, fusion, truth_);
  trace.initial_uncertainty = Uncertainty(fusion);

  std::size_t validated = 0;
  while (validated < options_.max_validations) {
    StrategyContext ctx;
    ctx.db = &db_;
    ctx.fusion = &fusion;
    ctx.priors = &trace.priors;
    ctx.model = &model_;
    ctx.fusion_opts = &options_.fusion;
    ctx.ground_truth = &truth_;
    ctx.graph = &graph;
    ctx.rng = rng_;
    ctx.include_singletons = options_.include_singletons;
    ctx.warm_start_lookahead = options_.warm_start;

    const std::size_t want = std::min(
        options_.batch_size, options_.max_validations - validated);

    Timer select_timer;
    const std::vector<ItemId> batch = strategy_->SelectBatch(ctx, want);
    const double select_seconds = select_timer.ElapsedSeconds();
    if (batch.empty()) break;  // Candidate pool exhausted.

    SessionStep step;
    step.items = batch;
    step.select_seconds = select_seconds;

    for (ItemId item : batch) {
      auto answer = oracle_->Answer(db_, item, truth_, rng_);
      if (!answer.ok()) return answer.status();
      VERITAS_RETURN_IF_ERROR(
          trace.priors.SetDistribution(db_, item, std::move(answer).value()));
      ++validated;
    }

    Timer fuse_timer;
    fusion = options_.warm_start
                 ? model_.Fuse(db_, trace.priors, options_.fusion, &fusion)
                 : model_.Fuse(db_, trace.priors, options_.fusion);
    step.fuse_seconds = fuse_timer.ElapsedSeconds();

    step.num_validated = validated;
    if (options_.record_metrics) {
      step.distance = DistanceToGroundTruth(db_, fusion, truth_);
      step.uncertainty = Uncertainty(fusion);
    }
    trace.steps.push_back(std::move(step));
  }

  trace.final_fusion = std::move(fusion);
  return trace;
}

}  // namespace veritas
