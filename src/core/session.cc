#include "core/session.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <optional>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "core/metrics.h"
#include "core/session_checkpoint.h"
#include "fusion/delta_fusion.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace veritas {

namespace {

/// Failures a degraded session survives by skipping the item: the oracle was
/// unreachable, ran out of (retry) time, or explicitly declined. Everything
/// else — unknown ground truth, out-of-range ids, internal errors — signals
/// a misconfigured run and still aborts.
bool IsSkippableOracleFailure(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kAbstained;
}

std::string SerializeRngState(Rng* rng) {
  if (rng == nullptr) return "";
  std::ostringstream out;
  out << rng->engine();
  return out.str();
}

Status RestoreRngState(Rng* rng, const std::string& state) {
  if (state.empty()) return Status::OK();
  if (rng == nullptr) {
    return Status::FailedPrecondition(
        "checkpoint has an Rng state but the session has no Rng");
  }
  std::istringstream in(state);
  if (!(in >> rng->engine())) {
    return Status::InvalidArgument("checkpoint: bad session Rng state");
  }
  return Status::OK();
}

std::size_t ApproxVectorBytes(const std::vector<double>& v) {
  return sizeof(v) + v.capacity() * sizeof(double);
}

/// Approximate resident bytes of the session's dominant heap state: the
/// recorded trace (steps + priors) and the live fusion posteriors (counted
/// twice — current result plus the in-flight re-fusion that momentarily
/// coexists with it). Deterministic for a given trace, so the same session
/// always evicts at the same round (see util/resource_budget.h).
std::size_t ApproxSessionBytes(const SessionTrace& trace,
                               const FusionResult& fusion) {
  std::size_t bytes = sizeof(SessionTrace);
  for (const SessionStep& step : trace.steps) {
    bytes += sizeof(SessionStep) +
             (step.items.capacity() + step.skipped.capacity()) *
                 sizeof(ItemId);
  }
  bytes += trace.skipped_items.capacity() * sizeof(ItemId);
  // Unordered-map node + key + vector header + payload per pinned prior.
  for (const auto& entry : trace.priors) {
    bytes += 64 + ApproxVectorBytes(entry.second);
  }
  std::size_t fusion_bytes = ApproxVectorBytes(fusion.accuracies());
  for (ItemId i = 0; i < fusion.num_items(); ++i) {
    fusion_bytes += ApproxVectorBytes(fusion.item_probs(i));
  }
  return bytes + 2 * fusion_bytes;
}

}  // namespace

double SessionTrace::DistanceReductionPercent(std::size_t idx) const {
  if (idx >= steps.size() || initial_distance == 0.0) return 0.0;
  return (steps[idx].distance - initial_distance) / initial_distance * 100.0;
}

double SessionTrace::UncertaintyReductionPercent(std::size_t idx) const {
  if (idx >= steps.size() || initial_uncertainty == 0.0) return 0.0;
  return (steps[idx].uncertainty - initial_uncertainty) /
         initial_uncertainty * 100.0;
}

double SessionTrace::MeanSelectSeconds() const {
  if (steps.empty()) return 0.0;
  double total = 0.0;
  for (const SessionStep& s : steps) total += s.select_seconds;
  return total / static_cast<double>(steps.size());
}

FeedbackSession::FeedbackSession(const Database& db, const FusionModel& model,
                                 Strategy* strategy, FeedbackOracle* oracle,
                                 const GroundTruth& truth,
                                 SessionOptions options, Rng* rng)
    : db_(db),
      model_(model),
      strategy_(strategy),
      oracle_(oracle),
      truth_(truth),
      options_(options),
      rng_(rng) {}

Result<SessionTrace> FeedbackSession::Run() {
  VERITAS_SPAN("session.run");
  // Per-phase instruments (Table 11/12 breakdowns): cached once, one atomic
  // op / histogram observe per round afterwards.
  MetricsRegistry& reg = MetricsRegistry::Global();
  static Counter* rounds_counter = reg.GetCounter("session.rounds");
  static Counter* validated_counter = reg.GetCounter("session.items_validated");
  static Counter* skipped_counter = reg.GetCounter("session.items_skipped");
  static Counter* retries_counter = reg.GetCounter("session.oracle_retries");
  static Counter* nonconverged_counter =
      reg.GetCounter("session.fusion_nonconverged_rounds");
  static Counter* fallback_counter =
      reg.GetCounter("session.fusion_fallback_rounds");
  static Histogram* step_hist = reg.GetHistogram("session.step_seconds");
  // Per-tenant round timings (not static: the label differs per session).
  Histogram* tenant_step_hist =
      options_.metrics_label.empty()
          ? nullptr
          : reg.GetHistogram("session.step_seconds." + options_.metrics_label);
  static Histogram* select_hist = reg.GetHistogram("session.select_seconds");
  static Histogram* oracle_hist = reg.GetHistogram("session.oracle_seconds");
  static Histogram* fuse_hist = reg.GetHistogram("session.fuse_seconds");
  static Histogram* metrics_hist = reg.GetHistogram("session.metrics_seconds");
  static Histogram* checkpoint_hist =
      reg.GetHistogram("session.checkpoint_seconds");
  static Counter* interrupted_counter =
      reg.GetCounter("session.interrupted_runs");
  static Counter* evicted_counter =
      reg.GetCounter("session.evicted_runs");
  // Streaming ingest instruments (see DESIGN.md §5g). The epoch gauge tracks
  // the live view generation; accuracy drift is the L-infinity move of the
  // shared accuracy prefix across one ingest tick (how hard each batch
  // shakes the model); the staleness histogram is the wall time from batch
  // receipt to the re-fused state that includes it.
  static Counter* ingest_obs_counter = reg.GetCounter("ingest.observations");
  static Counter* ingest_rev_counter = reg.GetCounter("ingest.revisions");
  static Counter* ingest_dup_counter = reg.GetCounter("ingest.duplicates");
  static Counter* ingest_batches_counter = reg.GetCounter("ingest.batches");
  static Counter* ingest_compactions_counter =
      reg.GetCounter("ingest.compactions");
  static Counter* truth_applied_counter =
      reg.GetCounter("ingest.truth_applied");
  static Counter* truth_deferred_counter =
      reg.GetCounter("ingest.truth_deferred");
  static Gauge* epoch_gauge = reg.GetGauge("ingest.epoch");
  static Gauge* drift_gauge = reg.GetGauge("ingest.accuracy_drift");
  static Histogram* staleness_hist =
      reg.GetHistogram("ingest.staleness_seconds");

  const StreamingSessionConfig& streaming = options_.streaming;
  if (streaming.active()) {
    if (streaming.feed == nullptr || streaming.truth == nullptr) {
      return Status::InvalidArgument(
          "streaming session: feed and truth are required");
    }
    if (&streaming.stream->db() != &db_) {
      return Status::InvalidArgument(
          "streaming session: stream->db() must be the session database");
    }
    if (streaming.truth != &truth_) {
      return Status::InvalidArgument(
          "streaming session: streaming.truth must alias the session truth");
    }
    if (!options_.checkpoint_path.empty() || !options_.resume_path.empty()) {
      return Status::InvalidArgument(
          "streaming session: checkpoint/resume is not supported (a "
          "checkpoint snapshots fusion state against a fixed database)");
    }
    if (streaming.compaction.has_value()) {
      const StreamingOptions& policy = *streaming.compaction;
      if (policy.compact_tail_fraction <= 0.0 ||
          policy.compact_tail_fraction > 1.0) {
        return Status::InvalidArgument(
            "streaming session: compact_tail_fraction must be in (0, 1]");
      }
      streaming.stream->set_options(policy);
    }
  }

  SessionTrace trace;
  strategy_->Reset();
  // The conflict graph is positional over the database; streaming appends
  // invalidate it, so it lives in an optional and is re-emplaced per tick
  // (ItemGraph holds a const reference and is not assignable).
  std::optional<ItemGraph> graph;
  graph.emplace(db_);

  // Cooperative stop plumbing: the fusion models and strategies see the
  // same token, so a hard stop drains the inner loops promptly while a
  // graceful stop (or deadline expiry) waits for the round boundary.
  options_.fusion.cancel = options_.cancel;
  const auto graceful_stop = [this] {
    return StopRequested(options_.cancel) || options_.deadline.expired();
  };
  const auto hard_stop = [this] {
    return HardStopRequested(options_.cancel);
  };

  // Incremental re-fusion engine, shared by the strategy lookaheads and the
  // post-feedback re-fuse. Null when the model has no local-update structure
  // (AccuCopy, LCA, ...) or when delta fusion is disabled; cold-started
  // sessions also stay on the full path (the base state the engine
  // propagates from must be the converged warm state).
  const std::unique_ptr<DeltaFusionEngine> delta =
      options_.warm_start && options_.fusion.use_delta_fusion
          ? (streaming.active()
                 ? DeltaFusionEngine::Create(*streaming.stream, model_,
                                             options_.fusion)
                 : DeltaFusionEngine::Create(db_, model_, options_.fusion))
          : nullptr;
  // FuseWithPins requires the base to reflect every prior except the new
  // pins. A warm-start rollback (non-finite or rejected re-fusion) breaks
  // that invariant until a full re-fusion lands again.
  bool delta_base_valid = true;

  std::unordered_set<ItemId> skipped_set;
  std::size_t validated = 0;
  FusionResult fusion;
  bool resumed = false;

  if (!options_.resume_path.empty()) {
    auto loaded = LoadSessionCheckpoint(options_.resume_path, db_);
    if (loaded.ok()) {
      SessionCheckpoint cp = std::move(loaded).value();
      trace.initial_distance = cp.initial_distance;
      trace.initial_uncertainty = cp.initial_uncertainty;
      trace.steps = std::move(cp.steps);
      trace.skipped_items = std::move(cp.skipped_items);
      trace.total_oracle_retries = cp.total_oracle_retries;
      trace.fusion_nonconverged_rounds = cp.fusion_nonconverged_rounds;
      trace.fusion_fallback_rounds = cp.fusion_fallback_rounds;
      trace.priors = std::move(cp.priors);
      skipped_set.insert(trace.skipped_items.begin(),
                         trace.skipped_items.end());
      validated = cp.num_validated;
      // Resume from the checkpointed fusion state verbatim instead of
      // re-fusing: warm-started rounds then continue bit-identically to the
      // uninterrupted run.
      fusion = std::move(cp.fusion);
      VERITAS_RETURN_IF_ERROR(RestoreRngState(rng_, cp.rng_state));
      VERITAS_RETURN_IF_ERROR(oracle_->RestoreState(cp.oracle_state));
      resumed = true;
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();  // Corrupt checkpoint: refuse to guess.
    }
    // NotFound: fresh start with the same flags.
  }

  if (!resumed) {
    fusion = model_.Fuse(db_, trace.priors, options_.fusion);
    trace.initial_distance = DistanceToGroundTruth(db_, fusion, truth_);
    trace.initial_uncertainty = Uncertainty(fusion);
  }
  // Rounds recorded before this process run started; the budget's per-run
  // quota (and its one-round-of-progress guarantee) counts from here.
  const std::size_t resumed_rounds = trace.steps.size();

  std::size_t rounds_since_checkpoint = 0;
  // Whether the in-memory trace has advanced past what is on disk. Keeps a
  // graceful stop from rotating a duplicate snapshot through the recovery
  // chain when the forced checkpoint would rewrite identical state.
  bool checkpoint_dirty = true;
  const auto maybe_checkpoint = [&](bool force) -> Status {
    if (options_.checkpoint_path.empty()) return Status::OK();
    if (!force &&
        ++rounds_since_checkpoint < options_.checkpoint_every_rounds) {
      return Status::OK();
    }
    if (!checkpoint_dirty) return Status::OK();
    rounds_since_checkpoint = 0;
    VERITAS_SPAN("session.checkpoint");
    Timer checkpoint_timer;
    SessionCheckpoint cp;
    cp.num_validated = validated;
    cp.initial_distance = trace.initial_distance;
    cp.initial_uncertainty = trace.initial_uncertainty;
    cp.total_oracle_retries = trace.total_oracle_retries;
    cp.fusion_nonconverged_rounds = trace.fusion_nonconverged_rounds;
    cp.fusion_fallback_rounds = trace.fusion_fallback_rounds;
    cp.steps = trace.steps;
    cp.skipped_items = trace.skipped_items;
    cp.priors = trace.priors;
    cp.fusion = fusion;
    cp.rng_state = SerializeRngState(rng_);
    cp.oracle_state = oracle_->SerializeState();
    const Status status = SaveSessionCheckpoint(cp, options_.checkpoint_path);
    checkpoint_hist->Observe(checkpoint_timer.ElapsedSeconds());
    if (status.ok()) checkpoint_dirty = false;
    return status;
  };

  // --- Streaming ingest tick -------------------------------------------
  // One batch per validation round (progress guarantee: either the feed
  // yields a batch or it is exhausted — an empty candidate pool with a live
  // feed loops back here, never spins). Truth rows that reference items not
  // yet streamed are deferred and retried after every later batch.
  std::deque<StreamTruth> deferred_truths;
  bool feed_live = streaming.active();
  const auto ingest_tick = [&]() -> Status {
    if (!feed_live) return Status::OK();
    IngestBatch batch;
    if (!streaming.feed->Next(&batch)) {
      feed_live = false;
      return Status::OK();
    }
    VERITAS_SPAN("session.ingest");
    // Fusion staleness: wall time from batch receipt until the fused state
    // reflecting it is in place.
    Timer staleness_timer;
    VERITAS_ASSIGN_OR_RETURN(const IngestStats stats,
                             streaming.stream->AppendBatch(batch));
    ++trace.ingest_batches;
    ingest_batches_counter->Add(1);
    trace.ingested_observations += stats.fresh;
    ingest_obs_counter->Add(stats.fresh);
    trace.ingest_revisions += stats.revisions;
    ingest_rev_counter->Add(stats.revisions);
    ingest_dup_counter->Add(stats.duplicates);

    // Apply truth: earlier deferrals first (their items may have just
    // arrived), then this batch's rows; failures go back on the queue.
    for (const StreamTruth& t : batch.truths) deferred_truths.push_back(t);
    const std::size_t pending = deferred_truths.size();
    for (std::size_t n = 0; n < pending; ++n) {
      StreamTruth t = std::move(deferred_truths.front());
      deferred_truths.pop_front();
      if (streaming.truth->SetByValue(db_, t.item, t.value).ok()) {
        ++trace.truths_applied;
        truth_applied_counter->Add(1);
      } else {
        deferred_truths.push_back(std::move(t));
      }
    }

    // Validated items stay pinned across epochs: a pin on an item that just
    // gained claims is zero-extended (the verdict stands; the late claim
    // gets probability 0).
    trace.priors.ExtendForNewClaims(db_);

    if (streaming.stream->CompactIfNeeded()) {
      ++trace.compactions;
      ingest_compactions_counter->Add(1);
    }

    std::vector<ItemId> dirty_items;
    std::vector<SourceId> dirty_sources;
    streaming.stream->TakeDirty(&dirty_items, &dirty_sources);
    if (!dirty_items.empty() || !dirty_sources.empty()) {
      const std::vector<double> acc_before = fusion.accuracies();
      bool incremental = false;
      if (delta != nullptr && delta_base_valid) {
        auto next = delta->FuseWithAppends(fusion, trace.priors, dirty_items,
                                           dirty_sources);
        if (next.ok() && next.value().AllFinite()) {
          fusion = std::move(next).value();
          incremental = true;
        }
      }
      if (!incremental) {
        // Cold full re-fusion: the shapes changed under the last result, so
        // a warm seed would be stale-shaped.
        FusionResult next = model_.Fuse(db_, trace.priors, options_.fusion);
        if (!next.AllFinite()) {
          return Status::Internal(
              "streaming re-fusion produced non-finite values");
        }
        fusion = std::move(next);
      }
      delta_base_valid = true;
      // Accuracy drift: the L-infinity move of the shared accuracy prefix —
      // how hard this batch shook the source model.
      double drift = 0.0;
      const std::vector<double>& acc_after = fusion.accuracies();
      const std::size_t shared = std::min(acc_before.size(), acc_after.size());
      for (std::size_t j = 0; j < shared; ++j) {
        drift = std::max(drift, std::fabs(acc_after[j] - acc_before[j]));
      }
      drift_gauge->Set(drift);
      graph.emplace(db_);
    }
    trace.final_epoch = streaming.stream->epoch();
    epoch_gauge->Set(static_cast<double>(trace.final_epoch));
    staleness_hist->Observe(staleness_timer.ElapsedSeconds());
    return Status::OK();
  };

  // Builds the DeadlineExceeded status every stop path returns. Mentions the
  // resume point so an operator (or the CLI) can relay it.
  const auto interrupted = [&]() -> Status {
    interrupted_counter->Add(1);
    std::ostringstream msg;
    msg << "session interrupted (" << DescribeStop(options_.cancel,
                                                   options_.deadline)
        << ") after " << validated << " validations";
    if (!options_.checkpoint_path.empty()) {
      msg << "; resumable checkpoint at " << options_.checkpoint_path;
    } else {
      msg << "; no checkpoint path configured, progress was not persisted";
    }
    return Status::DeadlineExceeded(msg.str());
  };

  while (validated < options_.max_validations) {
    // Graceful stop (first signal, or deadline expiry): observed only here,
    // at the round boundary, so every recorded round is bit-identical to the
    // uninterrupted run and the forced checkpoint resumes it exactly.
    if (graceful_stop()) {
      VERITAS_RETURN_IF_ERROR(maybe_checkpoint(/*force=*/true));
      return interrupted();
    }
    // Resource budget: graceful eviction-to-checkpoint, only once at least
    // one round has completed this run (guaranteed progress per admission).
    if (options_.budget.limited() &&
        trace.steps.size() > resumed_rounds) {
      ResourceUsage usage;
      usage.rounds_this_run = trace.steps.size() - resumed_rounds;
      usage.approx_bytes = ApproxSessionBytes(trace, fusion);
      const BudgetVerdict verdict = CheckBudget(options_.budget, usage);
      if (verdict != BudgetVerdict::kWithin) {
        VERITAS_RETURN_IF_ERROR(maybe_checkpoint(/*force=*/true));
        evicted_counter->Add(1);
        std::ostringstream msg;
        msg << "session evicted ("
            << DescribeBudgetBreach(verdict, options_.budget, usage)
            << ") after " << validated << " validations";
        if (!options_.checkpoint_path.empty()) {
          msg << "; resumable checkpoint at " << options_.checkpoint_path;
        } else {
          msg << "; no checkpoint path configured, progress was not"
                 " persisted";
        }
        return Status::ResourceExhausted(msg.str());
      }
    }

    // Streaming: ingest one batch before selecting, so the strategy ranks
    // candidates against the freshest fused view.
    VERITAS_RETURN_IF_ERROR(ingest_tick());

    StrategyContext ctx;
    ctx.db = &db_;
    ctx.fusion = &fusion;
    ctx.priors = &trace.priors;
    ctx.model = &model_;
    ctx.fusion_opts = &options_.fusion;
    ctx.ground_truth = &truth_;
    ctx.graph = &*graph;
    ctx.rng = rng_;
    ctx.excluded = &skipped_set;
    ctx.include_singletons = options_.include_singletons;
    ctx.warm_start_lookahead = options_.warm_start;
    ctx.delta = delta_base_valid ? delta.get() : nullptr;
    ctx.require_known_truth = streaming.require_known_truth;
    ctx.db_epoch = streaming.active() ? streaming.stream->epoch() : 0;
    ctx.cancel = options_.cancel;

    const std::size_t want = std::min(
        options_.batch_size, options_.max_validations - validated);

    rounds_counter->Add(1);
    // End-to-end round latency (select + oracle wait + re-fuse + metrics):
    // the distribution the serve bench quotes as step p50/p99. The per-phase
    // histograms below break it down.
    Timer round_timer;
    Timer select_timer;
    std::vector<ItemId> batch;
    {
      VERITAS_SPAN("session.select");
      batch = strategy_->SelectBatch(ctx, want);
    }
    const double select_seconds = select_timer.ElapsedSeconds();
    select_hist->Observe(select_seconds);
    // Hard stop first: a hard-cancelled strategy may return a truncated or
    // empty batch, which must not be mistaken for pool exhaustion. The
    // in-flight round is discarded; the last on-disk checkpoint stands.
    if (hard_stop()) return interrupted();
    if (batch.empty()) {
      // No candidates right now. With a live feed the pool can refill (the
      // next tick appends observations and truth rows), so loop back to
      // ingest — progress is guaranteed because every iteration advances the
      // feed. Only a drained feed means true exhaustion.
      if (feed_live) continue;
      break;
    }

    SessionStep step;
    step.select_seconds = select_seconds;

    {
      VERITAS_SPAN("session.oracle");
      Timer oracle_timer;
      for (ItemId item : batch) {
        if (hard_stop()) {
          oracle_hist->Observe(oracle_timer.ElapsedSeconds());
          return interrupted();
        }
        auto answer = oracle_->Answer(db_, item, truth_, rng_);
        // Fold the retry accrual in as retries happen: a round that aborts
        // below must not drop the attempts already spent (they are visible
        // through the registry even when the trace is discarded).
        const std::size_t retries = oracle_->last_attempts() - 1;
        step.oracle_retries += retries;
        trace.total_oracle_retries += retries;
        retries_counter->Add(retries);
        if (!answer.ok()) {
          if (options_.skip_unanswerable &&
              IsSkippableOracleFailure(answer.status().code())) {
            // Graceful degradation: remember the item so the strategy moves
            // to its next-best suggestion instead of re-proposing it forever.
            step.skipped.push_back(item);
            trace.skipped_items.push_back(item);
            skipped_set.insert(item);
            skipped_counter->Add(1);
            continue;
          }
          oracle_hist->Observe(oracle_timer.ElapsedSeconds());
          return answer.status();
        }
        VERITAS_RETURN_IF_ERROR(trace.priors.SetDistribution(
            db_, item, std::move(answer).value()));
        step.items.push_back(item);
        ++validated;
        validated_counter->Add(1);
      }
      oracle_hist->Observe(oracle_timer.ElapsedSeconds());
    }

    if (!step.items.empty()) {
      VERITAS_SPAN("session.refuse");
      Timer fuse_timer;
      FusionResult next =
          delta != nullptr && delta_base_valid
              ? delta->FuseWithPins(fusion, trace.priors, step.items)
          : options_.warm_start
              ? model_.Fuse(db_, trace.priors, options_.fusion, &fusion)
              : model_.Fuse(db_, trace.priors, options_.fusion);
      step.fuse_seconds = fuse_timer.ElapsedSeconds();
      fuse_hist->Observe(step.fuse_seconds);

      // A hard stop mid-fusion leaves `next` truncated (converged() false by
      // construction); discard the round before it pollutes the convergence
      // accounting or the fusion state.
      if (hard_stop()) return interrupted();

      if (!next.converged()) {
        ++trace.fusion_nonconverged_rounds;
        nonconverged_counter->Add(1);
      }
      const bool reject_nonconverged =
          options_.rollback_on_nonconvergence && !next.converged();
      if (!next.AllFinite() || reject_nonconverged) {
        // Warm-start rollback: keep the last-good fusion instead of
        // propagating a poisoned or partial result into strategy scores.
        ++trace.fusion_fallback_rounds;
        fallback_counter->Add(1);
        delta_base_valid = false;
      } else {
        fusion = std::move(next);
        delta_base_valid = true;
      }
    }

    step.num_validated = validated;
    if (options_.record_metrics) {
      VERITAS_SPAN("session.metrics");
      Timer metrics_timer;
      step.distance = DistanceToGroundTruth(db_, fusion, truth_);
      step.uncertainty = Uncertainty(fusion);
      metrics_hist->Observe(metrics_timer.ElapsedSeconds());
    }
    step_hist->Observe(round_timer.ElapsedSeconds());
    if (tenant_step_hist != nullptr) {
      tenant_step_hist->Observe(round_timer.ElapsedSeconds());
    }
    trace.steps.push_back(std::move(step));
    checkpoint_dirty = true;
    VERITAS_RETURN_IF_ERROR(maybe_checkpoint(/*force=*/false));
  }

  VERITAS_RETURN_IF_ERROR(maybe_checkpoint(/*force=*/true));
  if (streaming.active()) {
    trace.truths_deferred = deferred_truths.size();
    truth_deferred_counter->Add(trace.truths_deferred);
  }
  trace.final_fusion = std::move(fusion);
  return trace;
}

}  // namespace veritas
