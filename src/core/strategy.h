// Strategy: the interface every feedback-ordering method implements (the
// "next action" problem of §1.2). A strategy looks at the database, the
// current fusion output and the set of already-validated items, and returns
// the next item(s) the user should validate.
#ifndef VERITAS_CORE_STRATEGY_H_
#define VERITAS_CORE_STRATEGY_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "fusion/fusion_model.h"
#include "fusion/fusion_result.h"
#include "fusion/priors.h"
#include "model/database.h"
#include "model/ground_truth.h"
#include "model/item_graph.h"
#include "util/rng.h"

namespace veritas {

class DeltaFusionEngine;

/// Everything a strategy may consult when choosing the next action.
/// Pointers that a given strategy does not need may be null (see each
/// strategy's documentation); `db`, `fusion` and `priors` are always set.
struct StrategyContext {
  const Database* db = nullptr;
  const FusionResult* fusion = nullptr;  ///< Current fusion output <P, A>.
  const PriorSet* priors = nullptr;      ///< Validated items (excluded).
  const FusionModel* model = nullptr;    ///< For lookahead (MEU, GUB).
  const FusionOptions* fusion_opts = nullptr;
  const GroundTruth* ground_truth = nullptr;  ///< Only for GUB.
  const ItemGraph* graph = nullptr;           ///< For Approx-MEU.
  Rng* rng = nullptr;                         ///< For Random.
  /// Items the session could not validate (oracle permanently failed or the
  /// user marked them unanswerable); excluded from the action space like
  /// validated items. May be null.
  const std::unordered_set<ItemId>* excluded = nullptr;
  /// When true, items with a single claim are also candidates (the paper's
  /// worked example validates such an item; real experiments do not).
  bool include_singletons = false;
  /// When true (default), lookahead re-fusions (MEU, GUB) start from the
  /// current accuracies instead of the initial ones — much faster, same
  /// fixed point. The paper's worked example (Tables 4-6) cold-starts.
  bool warm_start_lookahead = true;
  /// Incremental re-fusion engine for `model` over `db`, or null. When set
  /// (and warm_start_lookahead is true), MEU-family strategies propagate each
  /// hypothetical pin over a dirty frontier instead of re-fusing the whole
  /// database. The session owns the engine and keeps it in sync with `db`.
  const DeltaFusionEngine* delta = nullptr;
  /// When true, only items with known ground truth are candidates. Streaming
  /// sessions with a strict (RequireTruth) oracle set this: an item whose
  /// truth row has not arrived yet simply waits — it re-enters the action
  /// space the moment its truth lands, instead of aborting the session or
  /// being skipped forever.
  bool require_known_truth = false;
  /// Epoch of the database the context was built against. Streaming sessions
  /// bump it on every structural ingest tick; a frozen database stays at 0.
  /// Strategies that cache positional state across calls (e.g. QBC's
  /// ranking) must fold it into their cache key — the Database object's
  /// *address* stays stable while its contents grow.
  std::uint64_t db_epoch = 0;
  /// Optional hard-stop token (not owned; may be null). Lookahead-heavy
  /// strategies poll it between candidates and bail out of the scan when a
  /// hard stop is requested; the truncated batch is discarded by the session,
  /// so partial scores never leak into a recorded round.
  const CancellationToken* cancel = nullptr;
};

/// Abstract feedback-ordering strategy.
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Short identifier ("qbc", "meu", ...).
  virtual std::string name() const = 0;

  /// Clears per-session caches, if any. Called when a new session starts.
  virtual void Reset() {}

  /// Returns up to `batch` distinct unvalidated items to validate next,
  /// best first. Returns fewer (possibly zero) items when candidates run out.
  virtual std::vector<ItemId> SelectBatch(const StrategyContext& ctx,
                                          std::size_t batch) = 0;

  /// Single-action convenience: the best next item, or kInvalidItem.
  ItemId SelectNext(const StrategyContext& ctx);
};

/// The action space Theta: unvalidated items (conflicting only, unless
/// ctx.include_singletons).
std::vector<ItemId> CandidateItems(const StrategyContext& ctx);

/// Picks the `k` highest-scoring candidates (ties broken by lower item id,
/// deterministically). `scores` is parallel to `candidates`.
std::vector<ItemId> TopKByScore(const std::vector<ItemId>& candidates,
                                const std::vector<double>& scores,
                                std::size_t k);

/// Vote entropy of an item (Eq. 3 over the Eq. 5 vote shares) — the QBC
/// score, also used by the hybrid Approx-MEU_k filter.
double VoteEntropy(const Database& db, ItemId item);

}  // namespace veritas

#endif  // VERITAS_CORE_STRATEGY_H_
