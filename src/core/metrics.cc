#include "core/metrics.h"

namespace veritas {

double DistanceToGroundTruth(const Database& db, const FusionResult& fusion,
                             const GroundTruth& truth) {
  if (db.num_items() == 0) return 0.0;
  double sum = 0.0;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    const ClaimIndex t = truth.TrueClaim(i);
    if (t == kInvalidClaim) continue;
    sum += 1.0 - fusion.prob(i, t);
  }
  return sum / static_cast<double>(db.num_items());
}

double Uncertainty(const FusionResult& fusion) {
  return fusion.TotalEntropy();
}

double GroundTruthUtility(const Database& db, const FusionResult& fusion,
                          const GroundTruth& truth) {
  if (db.num_claims() == 0) return 0.0;
  double sum = 0.0;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    const ClaimIndex t = truth.TrueClaim(i);
    if (t == kInvalidClaim) continue;
    sum += fusion.prob(i, t) / static_cast<double>(db.num_claims(i));
  }
  return sum / static_cast<double>(db.num_claims());
}

double EntropyUtility(const FusionResult& fusion) {
  return -fusion.TotalEntropy();
}

double FusionAccuracy(const Database& db, const FusionResult& fusion,
                      const GroundTruth& truth) {
  std::size_t known = 0;
  std::size_t correct = 0;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    const ClaimIndex t = truth.TrueClaim(i);
    if (t == kInvalidClaim) continue;
    ++known;
    if (fusion.WinningClaim(i) == t) ++correct;
  }
  if (known == 0) return 0.0;
  return static_cast<double>(correct) / static_cast<double>(known);
}

}  // namespace veritas
