#include "core/session_checkpoint.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "util/durable_file.h"

namespace veritas {

namespace {

// Hex-float encoding round-trips every finite double bit-exactly and parses
// back with strtod; decimal formatting would need 17 digits and still risks
// libc rounding differences.
std::string HexDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

Result<double> ParseDoubleToken(const std::string& token) {
  char* end = nullptr;
  const double parsed = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    return Status::InvalidArgument("checkpoint: bad number '" + token + "'");
  }
  return parsed;
}

Status ExpectTag(std::istream& in, const char* tag) {
  std::string token;
  if (!(in >> token) || token != tag) {
    return Status::InvalidArgument(std::string("checkpoint: expected '") +
                                   tag + "', got '" + token + "'");
  }
  return Status::OK();
}

// Reads the remainder of the current line as an opaque state blob; "-"
// encodes the empty state (so every record is at least one token).
Result<std::string> ReadRestOfLine(std::istream& in) {
  std::string rest;
  std::getline(in, rest);
  const std::size_t start = rest.find_first_not_of(' ');
  if (start == std::string::npos || rest.substr(start) == "-") {
    return std::string();
  }
  return rest.substr(start);
}

void WriteStateLine(std::ostream& out, const char* tag,
                    const std::string& state) {
  out << tag << " " << (state.empty() ? "-" : state) << "\n";
}

Result<std::vector<ItemId>> ReadItemList(std::istream& in,
                                         const Database& db) {
  std::size_t n = 0;
  if (!(in >> n)) {
    return Status::InvalidArgument("checkpoint: missing item count");
  }
  if (n > db.num_items()) {
    return Status::InvalidArgument("checkpoint: item list longer than db");
  }
  std::vector<ItemId> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ItemId id = kInvalidItem;
    if (!(in >> id) || id >= db.num_items()) {
      return Status::InvalidArgument("checkpoint: item id out of range");
    }
    out.push_back(id);
  }
  return out;
}

Result<std::vector<double>> ReadDoubles(std::istream& in, std::size_t n) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string token;
    if (!(in >> token)) {
      return Status::InvalidArgument("checkpoint: truncated number list");
    }
    VERITAS_ASSIGN_OR_RETURN(double v, ParseDoubleToken(token));
    out.push_back(v);
  }
  return out;
}

// Format v2 trailer: "crc32c <8-hex-digit checksum> <payload bytes>\n"
// appended after the "end" tag. The checksum covers every byte of the
// payload (header through "end\n" inclusive), so both truncation (length
// mismatch) and bit flips (checksum mismatch) are caught before parsing.
std::string MakeTrailer(const std::string& payload) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "crc32c %08x %zu\n", Crc32c(payload),
                payload.size());
  return buf;
}

// Splits `contents` into payload + verified trailer. On success `payload`
// holds everything before the trailer line.
Status VerifyTrailer(const std::string& contents, std::string* payload) {
  if (contents.empty() || contents.back() != '\n') {
    return Status::InvalidArgument(
        "checkpoint: truncated (no trailing newline)");
  }
  const std::size_t prev = contents.find_last_of('\n', contents.size() - 2);
  const std::size_t line_start = prev == std::string::npos ? 0 : prev + 1;
  const std::string line =
      contents.substr(line_start, contents.size() - line_start - 1);
  std::istringstream in(line);
  std::string tag, hex;
  std::size_t size = 0;
  if (!(in >> tag >> hex >> size) || tag != "crc32c") {
    return Status::InvalidArgument(
        "checkpoint: missing or corrupt checksum trailer");
  }
  char* end = nullptr;
  const unsigned long expected_crc = std::strtoul(hex.c_str(), &end, 16);
  if (end == hex.c_str() || *end != '\0') {
    return Status::InvalidArgument(
        "checkpoint: unreadable checksum '" + hex + "'");
  }
  *payload = contents.substr(0, line_start);
  if (payload->size() != size) {
    return Status::InvalidArgument(
        "checkpoint: truncated (payload is " +
        std::to_string(payload->size()) + " bytes, trailer recorded " +
        std::to_string(size) + ")");
  }
  const std::uint32_t actual_crc = Crc32c(*payload);
  if (actual_crc != static_cast<std::uint32_t>(expected_crc)) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x", actual_crc);
    return Status::InvalidArgument("checkpoint: checksum mismatch (stored " +
                                   hex + ", computed " + buf + ")");
  }
  return Status::OK();
}

// Reads the "veritas-checkpoint <version>" header without consuming the
// stream, distinguishing a garbage/truncated version field from a version
// this build does not understand.
Result<int> PeekVersion(const std::string& contents) {
  std::istringstream in(contents);
  std::string tag;
  if (!(in >> tag) || tag != "veritas-checkpoint") {
    return Status::InvalidArgument(
        "checkpoint: expected 'veritas-checkpoint', got '" + tag + "'");
  }
  std::string token;
  if (!(in >> token)) {
    return Status::InvalidArgument(
        "checkpoint: unreadable format version (truncated header)");
  }
  char* end = nullptr;
  const long version = std::strtol(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0') {
    return Status::InvalidArgument(
        "checkpoint: unreadable format version '" + token + "'");
  }
  if (version < 1 || version > SessionCheckpoint::kFormatVersion) {
    return Status::InvalidArgument("checkpoint: unsupported format version " +
                                   std::to_string(version));
  }
  return static_cast<int>(version);
}

}  // namespace

Status SaveSessionCheckpoint(const SessionCheckpoint& checkpoint,
                             const std::string& path, int keep_generations) {
  std::ostringstream out;
  out << "veritas-checkpoint " << SessionCheckpoint::kFormatVersion << "\n";
  out << "meta " << checkpoint.num_validated << " "
      << checkpoint.total_oracle_retries << " "
      << checkpoint.fusion_nonconverged_rounds << " "
      << checkpoint.fusion_fallback_rounds << "\n";
  out << "initial " << HexDouble(checkpoint.initial_distance) << " "
      << HexDouble(checkpoint.initial_uncertainty) << "\n";
  WriteStateLine(out, "rng", checkpoint.rng_state);
  WriteStateLine(out, "oracle", checkpoint.oracle_state);
  out << "skipped " << checkpoint.skipped_items.size();
  for (ItemId id : checkpoint.skipped_items) out << " " << id;
  out << "\n";
  out << "steps " << checkpoint.steps.size() << "\n";
  for (const SessionStep& step : checkpoint.steps) {
    out << "step " << step.num_validated << " " << step.oracle_retries << " "
        << HexDouble(step.distance) << " " << HexDouble(step.uncertainty)
        << " " << HexDouble(step.select_seconds) << " "
        << HexDouble(step.fuse_seconds) << " " << step.items.size();
    for (ItemId id : step.items) out << " " << id;
    out << " " << step.skipped.size();
    for (ItemId id : step.skipped) out << " " << id;
    out << "\n";
  }
  out << "priors " << checkpoint.priors.size() << "\n";
  for (const auto& [item, probs] : checkpoint.priors) {
    out << "prior " << item << " " << probs.size();
    for (double p : probs) out << " " << HexDouble(p);
    out << "\n";
  }
  const FusionResult& fusion = checkpoint.fusion;
  out << "fusion " << fusion.num_items() << " "
      << fusion.accuracies().size() << " " << fusion.iterations() << " "
      << (fusion.converged() ? 1 : 0) << "\n";
  for (ItemId i = 0; i < fusion.num_items(); ++i) {
    const std::vector<double>& probs = fusion.item_probs(i);
    out << "fprob " << i << " " << probs.size();
    for (double p : probs) out << " " << HexDouble(p);
    out << "\n";
  }
  out << "facc " << fusion.accuracies().size();
  for (double a : fusion.accuracies()) out << " " << HexDouble(a);
  out << "\nend\n";

  const std::string payload = out.str();

  // Rotate the recovery chain before the head is replaced: path.1 -> path.2,
  // path -> path.1. A crash between the rotation and the new head write
  // leaves path.1 as the newest verifiable generation, which the loader's
  // chain walk finds. Missing generations are fine (fresh sessions).
  for (int gen = keep_generations; gen >= 1; --gen) {
    const std::string from =
        gen == 1 ? path : path + "." + std::to_string(gen - 1);
    const std::string to = path + "." + std::to_string(gen);
    (void)std::rename(from.c_str(), to.c_str());
  }

  // Atomic, fsync'd replace with a process-unique temp name: a crash
  // mid-write must not clobber the previous checkpoint, and two sessions
  // checkpointing the same path must not race on the temp file.
  return AtomicWriteFile(path, payload + MakeTrailer(payload));
}

namespace {

// Loads and verifies one on-disk generation. The parsing still never trusts
// the file — the checksum catches random corruption, but a maliciously (or
// impossibly) crafted payload with a valid checksum must also fail with a
// Status, never crash — so every shape check below stays.
Result<SessionCheckpoint> LoadCheckpointGeneration(const std::string& path,
                                                   const Database& db) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("no checkpoint at: " + path);
  }
  std::ostringstream raw;
  raw << file.rdbuf();
  const std::string contents = raw.str();

  VERITAS_ASSIGN_OR_RETURN(const int version, PeekVersion(contents));
  std::string payload;
  if (version >= 2) {
    VERITAS_RETURN_IF_ERROR(VerifyTrailer(contents, &payload));
  } else {
    payload = contents;  // v1 predates the checksum trailer.
  }
  std::istringstream in(payload);
  VERITAS_RETURN_IF_ERROR(ExpectTag(in, "veritas-checkpoint"));
  {
    std::string version_token;
    in >> version_token;  // Validated by PeekVersion above.
  }

  SessionCheckpoint cp;
  VERITAS_RETURN_IF_ERROR(ExpectTag(in, "meta"));
  if (!(in >> cp.num_validated >> cp.total_oracle_retries >>
        cp.fusion_nonconverged_rounds >> cp.fusion_fallback_rounds)) {
    return Status::InvalidArgument("checkpoint: bad meta record");
  }
  VERITAS_RETURN_IF_ERROR(ExpectTag(in, "initial"));
  {
    VERITAS_ASSIGN_OR_RETURN(auto initial, ReadDoubles(in, 2));
    cp.initial_distance = initial[0];
    cp.initial_uncertainty = initial[1];
  }
  VERITAS_RETURN_IF_ERROR(ExpectTag(in, "rng"));
  VERITAS_ASSIGN_OR_RETURN(cp.rng_state, ReadRestOfLine(in));
  VERITAS_RETURN_IF_ERROR(ExpectTag(in, "oracle"));
  VERITAS_ASSIGN_OR_RETURN(cp.oracle_state, ReadRestOfLine(in));
  VERITAS_RETURN_IF_ERROR(ExpectTag(in, "skipped"));
  VERITAS_ASSIGN_OR_RETURN(cp.skipped_items, ReadItemList(in, db));

  VERITAS_RETURN_IF_ERROR(ExpectTag(in, "steps"));
  std::size_t num_steps = 0;
  if (!(in >> num_steps)) {
    return Status::InvalidArgument("checkpoint: bad step count");
  }
  cp.steps.reserve(num_steps);
  for (std::size_t s = 0; s < num_steps; ++s) {
    VERITAS_RETURN_IF_ERROR(ExpectTag(in, "step"));
    SessionStep step;
    if (!(in >> step.num_validated >> step.oracle_retries)) {
      return Status::InvalidArgument("checkpoint: bad step record");
    }
    VERITAS_ASSIGN_OR_RETURN(auto metrics, ReadDoubles(in, 4));
    step.distance = metrics[0];
    step.uncertainty = metrics[1];
    step.select_seconds = metrics[2];
    step.fuse_seconds = metrics[3];
    VERITAS_ASSIGN_OR_RETURN(step.items, ReadItemList(in, db));
    VERITAS_ASSIGN_OR_RETURN(step.skipped, ReadItemList(in, db));
    cp.steps.push_back(std::move(step));
  }

  VERITAS_RETURN_IF_ERROR(ExpectTag(in, "priors"));
  std::size_t num_priors = 0;
  if (!(in >> num_priors)) {
    return Status::InvalidArgument("checkpoint: bad prior count");
  }
  for (std::size_t p = 0; p < num_priors; ++p) {
    VERITAS_RETURN_IF_ERROR(ExpectTag(in, "prior"));
    ItemId item = kInvalidItem;
    std::size_t num_claims = 0;
    if (!(in >> item >> num_claims) || item >= db.num_items() ||
        num_claims != db.num_claims(item)) {
      return Status::InvalidArgument(
          "checkpoint: prior does not match database shape");
    }
    VERITAS_ASSIGN_OR_RETURN(auto probs, ReadDoubles(in, num_claims));
    VERITAS_RETURN_IF_ERROR(
        cp.priors.SetDistribution(db, item, std::move(probs)));
  }

  VERITAS_RETURN_IF_ERROR(ExpectTag(in, "fusion"));
  std::size_t fusion_items = 0, fusion_sources = 0, iterations = 0;
  int converged = 0;
  if (!(in >> fusion_items >> fusion_sources >> iterations >> converged) ||
      fusion_items != db.num_items() || fusion_sources != db.num_sources()) {
    return Status::InvalidArgument(
        "checkpoint: fusion result does not match database shape");
  }
  cp.fusion = FusionResult(db, 0.0);
  cp.fusion.set_iterations(iterations);
  cp.fusion.set_converged(converged != 0);
  for (std::size_t i = 0; i < fusion_items; ++i) {
    VERITAS_RETURN_IF_ERROR(ExpectTag(in, "fprob"));
    ItemId item = kInvalidItem;
    std::size_t num_claims = 0;
    if (!(in >> item >> num_claims) || item >= db.num_items() ||
        num_claims != db.num_claims(item)) {
      return Status::InvalidArgument(
          "checkpoint: fusion probs do not match database shape");
    }
    VERITAS_ASSIGN_OR_RETURN(*cp.fusion.mutable_item_probs(item),
                             ReadDoubles(in, num_claims));
  }
  VERITAS_RETURN_IF_ERROR(ExpectTag(in, "facc"));
  std::size_t num_accuracies = 0;
  if (!(in >> num_accuracies) || num_accuracies != db.num_sources()) {
    return Status::InvalidArgument(
        "checkpoint: accuracies do not match database shape");
  }
  VERITAS_ASSIGN_OR_RETURN(*cp.fusion.mutable_accuracies(),
                           ReadDoubles(in, num_accuracies));
  VERITAS_RETURN_IF_ERROR(ExpectTag(in, "end"));
  return cp;
}

}  // namespace

Result<SessionCheckpoint> LoadSessionCheckpoint(const std::string& path,
                                                const Database& db) {
  static Counter* recovered_counter =
      MetricsRegistry::Global().GetCounter("checkpoint.recovered");
  Status head_status;
  for (int gen = 0; gen <= SessionCheckpoint::kRecoveryGenerations; ++gen) {
    const std::string p =
        gen == 0 ? path : path + "." + std::to_string(gen);
    auto loaded = LoadCheckpointGeneration(p, db);
    if (loaded.ok()) {
      if (gen > 0) recovered_counter->Add(1);
      return loaded;
    }
    // Head unusable (missing after a crashed rotation, truncated, or
    // corrupt): keep walking toward older generations. The head's error is
    // what the caller sees if nothing in the chain verifies — it names the
    // file the user pointed at and preserves NotFound fresh-start semantics.
    if (gen == 0) head_status = loaded.status();
  }
  return head_status;
}

}  // namespace veritas
