// MEU — Maximum Expected Utility (§4.2.2, Algorithm 1): the exact VPI
// framework over the entropy utility function (Definition 5).
//
// For every candidate item o_i and every claim v_i^k, MEU pins v_i^k as true,
// re-runs fusion, and measures the resulting total entropy. The expected
// utility of validating o_i is the p_i^k-weighted average of those entropies;
// the item maximizing the expected entropy reduction (Eq. 7) is selected.
//
// Cost: O(m * kappa) re-fusions per action — exact but expensive; re-fusions
// are warm-started from the current accuracies to cut iterations, and when
// ctx.delta is set each hypothetical pin is propagated incrementally over a
// dirty frontier (fusion/delta_fusion.h) instead of re-fusing the whole
// database. Requires ctx.model and ctx.fusion_opts.
#ifndef VERITAS_CORE_MEU_H_
#define VERITAS_CORE_MEU_H_

#include "core/strategy.h"
#include "fusion/delta_fusion.h"

namespace veritas {

/// Exact one-step-lookahead VPI strategy with the entropy utility.
class MeuStrategy : public Strategy {
 public:
  /// `num_threads` > 1 scores candidates concurrently (the lookahead
  /// re-fusions are independent). Results are bit-identical to the
  /// sequential run. All built-in fusion models are thread-safe.
  explicit MeuStrategy(std::size_t num_threads = 1)
      : num_threads_(num_threads == 0 ? 1 : num_threads) {}

  std::string name() const override { return "meu"; }

  std::size_t num_threads() const { return num_threads_; }

  std::vector<ItemId> SelectBatch(const StrategyContext& ctx,
                                  std::size_t batch) override;

  /// Expected total entropy after validating `item` (the EU* of Table 6):
  ///   sum_k p_i^k * TotalEntropy(F(D | v_i^k = true)).
  /// Exposed for the worked-example tests and diagnostics.
  static double ExpectedEntropyAfterValidation(const StrategyContext& ctx,
                                               ItemId item);

  /// Delta-fusion fast path: same quantity, computed by propagating each
  /// hypothetical pin from `base` (prepared from ctx.fusion) with reusable
  /// scratch `ws`. Precondition: ctx.delta != nullptr. Candidate scans call
  /// this with one shared base and a per-worker workspace.
  static double ExpectedEntropyAfterValidation(
      const StrategyContext& ctx, ItemId item,
      const DeltaFusionEngine::BaseState& base, DeltaFusionEngine::Workspace& ws);

 private:
  std::size_t num_threads_;
};

}  // namespace veritas

#endif  // VERITAS_CORE_MEU_H_
