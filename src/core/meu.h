// MEU — Maximum Expected Utility (§4.2.2, Algorithm 1): the exact VPI
// framework over the entropy utility function (Definition 5).
//
// For every candidate item o_i and every claim v_i^k, MEU pins v_i^k as true,
// re-runs fusion, and measures the resulting total entropy. The expected
// utility of validating o_i is the p_i^k-weighted average of those entropies;
// the item maximizing the expected entropy reduction (Eq. 7) is selected.
//
// Cost: O(m * kappa) re-fusions per action — exact but expensive. The scan
// engine here attacks that from three sides (DESIGN.md §5f):
//   * a persistent work-stealing ThreadPool with per-lane delta-fusion
//     workspaces, reused across SelectNext rounds (no thread spawns);
//   * branch-and-bound pruning: candidates are visited best-first (seeded by
//     last round's ranking), a shared monotone threshold tracks the batch-th
//     best exact gain, and a candidate is abandoned — a priori or mid-claim —
//     once an upper bound on its gain provably falls below that threshold;
//   * the delta engine's flat SoA frontier passes (fusion/delta_fusion.h).
// Selections are deterministic for any thread count: the threshold is only
// ever fed *exact* gains, so every true top-batch candidate is evaluated
// exactly, and pruned candidates record a bound strictly below the final
// threshold. Requires ctx.model and ctx.fusion_opts.
#ifndef VERITAS_CORE_MEU_H_
#define VERITAS_CORE_MEU_H_

#include <memory>

#include "core/strategy.h"
#include "fusion/delta_fusion.h"
#include "fusion/sharded_scan.h"
#include "util/thread_pool.h"

namespace veritas {

/// Knobs of the pruned lookahead scan.
struct MeuScanOptions {
  /// Branch-and-bound pruning of provably non-winning candidates. Only
  /// active on the delta-fusion path with more candidates than the batch.
  bool prune = true;
  /// Relative margin of the per-claim gain bound for models with cross-item
  /// influence: a pin on o_i is assumed to reduce total entropy by at most
  /// (1 + margin) * H(o_i). Voting uses the exact bound H(o_i); for Accu and
  /// TruthFinder the ripple through source accuracies is a heuristic bound,
  /// not a theorem — dense synthetic data has been observed at 1.9x H(o_i),
  /// so the default leaves ~60% headroom. Validated empirically by the
  /// equivalence suite and the exported meu.max_gain_bound_ratio gauge
  /// (see DESIGN.md §5f).
  double prune_margin_rel = 2.0;
  /// Candidate sets smaller than this run inline on the caller thread —
  /// pool dispatch costs more than it buys on tiny rounds.
  std::size_t serial_cutoff = 32;
  /// How many of last round's best candidates seed the front of the scan.
  std::size_t seed_limit = 64;
  /// Indices per work-stealing chunk.
  std::size_t chunk_size = 8;
};

/// Exact one-step-lookahead VPI strategy with the entropy utility.
class MeuStrategy : public Strategy {
 public:
  /// `num_threads` > 1 scores candidates concurrently on a persistent
  /// work-stealing pool (the lookahead re-fusions are independent). Selected
  /// items are identical for every thread count. All built-in fusion models
  /// are thread-safe.
  explicit MeuStrategy(std::size_t num_threads = 1, MeuScanOptions scan = {})
      : num_threads_(num_threads == 0 ? 1 : num_threads), scan_(scan) {}

  std::string name() const override { return "meu"; }

  std::size_t num_threads() const { return num_threads_; }
  const MeuScanOptions& scan_options() const { return scan_; }

  /// Clears the cross-round seed ranking (the pool survives).
  void Reset() override { seed_ranking_.clear(); }

  std::vector<ItemId> SelectBatch(const StrategyContext& ctx,
                                  std::size_t batch) override;

  /// Gains (Eq. 7 Delta-EU) parallel to `candidates`. With `allow_prune`,
  /// entries that provably cannot reach the top `top_k` may hold an upper
  /// bound on their gain instead of the exact value (always strictly below
  /// the top_k-th best exact gain, so TopKByScore over the result is
  /// unchanged); without it every entry is exact. Used by SequentialMeu for
  /// its (necessarily unpruned) myopic preselection.
  std::vector<double> ScoreCandidateGains(const StrategyContext& ctx,
                                          const std::vector<ItemId>& candidates,
                                          std::size_t top_k, bool allow_prune);

  /// Expected total entropy after validating `item` (the EU* of Table 6):
  ///   sum_k p_i^k * TotalEntropy(F(D | v_i^k = true)).
  /// Exposed for the worked-example tests and diagnostics.
  static double ExpectedEntropyAfterValidation(const StrategyContext& ctx,
                                               ItemId item);

  /// Delta-fusion fast path: same quantity, computed by propagating each
  /// hypothetical pin from `base` (prepared from ctx.fusion) with reusable
  /// scratch `ws`. Precondition: ctx.delta != nullptr. Candidate scans call
  /// this with one shared base and a per-worker workspace.
  static double ExpectedEntropyAfterValidation(
      const StrategyContext& ctx, ItemId item,
      const DeltaFusionEngine::BaseState& base, DeltaFusionEngine::Workspace& ws);

 private:
  /// The scan order: indices into `candidates`, last round's ranking first,
  /// then descending current item entropy (ties: lower item id). Purely a
  /// function of (seed_ranking_, ctx) — identical for every thread count.
  std::vector<std::size_t> ScanOrder(const StrategyContext& ctx,
                                     const std::vector<ItemId>& candidates) const;

  /// The scan body behind ScoreCandidateGains. With a non-null `plan`, gains
  /// are shard-confined *estimates* (each candidate's lookahead propagates
  /// inside its own shard only) and branch-and-bound runs per shard with
  /// `top_k` as the per-shard quota; the seed ranking is not updated (it
  /// belongs to the exact scan). With a null plan this is the classic exact
  /// scan. `shared_base`, when non-null, is a flattened base the caller owns
  /// — the sharded path prepares it once and reuses it across both stages
  /// (flattening is O(database), the stages are not).
  std::vector<double> ScanCandidateGains(
      const StrategyContext& ctx, const std::vector<ItemId>& candidates,
      std::size_t top_k, bool allow_prune, const ShardedScanPlan* plan,
      const DeltaFusionEngine::BaseState* shared_base = nullptr);

  /// The sharded two-stage selection (fusion/sharded_scan.h): confined
  /// per-shard estimate scan, deterministic top-quota merge, exact
  /// unconfined re-rank of the merged pool. Requires the delta path.
  std::vector<ItemId> SelectBatchSharded(const StrategyContext& ctx,
                                         const std::vector<ItemId>& candidates,
                                         std::size_t batch, std::size_t shards);

  std::size_t num_threads_;
  MeuScanOptions scan_;
  std::unique_ptr<ThreadPool> pool_;  // Lazy; persists across rounds.
  /// Per-lane delta workspaces, persistent so a round only pays one lazy
  /// base sync per lane instead of re-allocating O(database) scratch.
  std::vector<DeltaFusionEngine::Workspace> lane_ws_;
  std::vector<ItemId> seed_ranking_;  // Last round's best, best first.
  /// Cached shard partition for FusionOptions::shards > 1 (rebuilt on epoch
  /// or shard-count change).
  ShardedScanPlan shard_plan_;
};

}  // namespace veritas

#endif  // VERITAS_CORE_MEU_H_
