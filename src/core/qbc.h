// QBC — Query-by-Committee (§4.1.1): ranks items by the entropy of their
// source-vote distribution (vote entropy, Eq. 3 over Eq. 5). Depends only on
// the observations, not on the fusion output, so the ranking is computed once
// per session and replayed.
#ifndef VERITAS_CORE_QBC_H_
#define VERITAS_CORE_QBC_H_

#include "core/strategy.h"

namespace veritas {

/// Disagreement-based item-level ranking.
class QbcStrategy : public Strategy {
 public:
  std::string name() const override { return "qbc"; }

  void Reset() override {
    ranked_.clear();
    ranked_db_ = nullptr;
    ranked_epoch_ = 0;
  }

  std::vector<ItemId> SelectBatch(const StrategyContext& ctx,
                                  std::size_t batch) override;

 private:
  // Items in descending vote-entropy order, computed lazily on first call.
  // Vote entropies never change during a session over a frozen database
  // (§4.1.1: QBC "does not need to recompute entropies after a validation").
  // The cache is keyed on the database identity AND the ingest epoch: the
  // identity catches a strategy instance reused across databases, the epoch
  // catches a streaming database that grew in place under the same address.
  std::vector<ItemId> ranked_;
  const Database* ranked_db_ = nullptr;
  std::uint64_t ranked_epoch_ = 0;
  bool ranked_includes_singletons_ = false;
};

}  // namespace veritas

#endif  // VERITAS_CORE_QBC_H_
