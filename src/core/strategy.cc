#include "core/strategy.h"

#include <algorithm>
#include <numeric>

#include "fusion/voting.h"
#include "util/math.h"

namespace veritas {

ItemId Strategy::SelectNext(const StrategyContext& ctx) {
  const std::vector<ItemId> batch = SelectBatch(ctx, 1);
  return batch.empty() ? kInvalidItem : batch.front();
}

std::vector<ItemId> CandidateItems(const StrategyContext& ctx) {
  std::vector<ItemId> out;
  const Database& db = *ctx.db;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (ctx.priors->Has(i)) continue;
    if (ctx.excluded != nullptr && ctx.excluded->count(i) > 0) continue;
    if (!ctx.include_singletons && !db.HasConflict(i)) continue;
    if (ctx.require_known_truth && ctx.ground_truth != nullptr &&
        !ctx.ground_truth->Knows(i)) {
      continue;
    }
    out.push_back(i);
  }
  return out;
}

std::vector<ItemId> TopKByScore(const std::vector<ItemId>& candidates,
                                const std::vector<double>& scores,
                                std::size_t k) {
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  const std::size_t take = std::min(k, candidates.size());
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [&](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return candidates[a] < candidates[b];
                    });
  std::vector<ItemId> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(candidates[order[i]]);
  return out;
}

double VoteEntropy(const Database& db, ItemId item) {
  return Entropy(VotingFusion::VoteShares(db, item));
}

}  // namespace veritas
