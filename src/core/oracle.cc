#include "core/oracle.h"

#include <cassert>
#include <cstdlib>

#include "util/math.h"
#include "util/strings.h"

namespace veritas {

namespace {

Status RequireTruth(const Database& db, ItemId item, const GroundTruth& truth) {
  if (item >= db.num_items()) {
    return Status::OutOfRange("oracle: item id out of range");
  }
  if (!truth.Knows(item)) {
    return Status::FailedPrecondition(
        "oracle: ground truth unknown for item '" + db.item(item).name + "'");
  }
  return Status::OK();
}

}  // namespace

std::vector<double> SpreadDistribution(std::size_t num_claims,
                                       ClaimIndex true_claim, double p_true) {
  assert(true_claim < num_claims);
  if (num_claims == 1) return {1.0};
  p_true = ClampProb(p_true);
  std::vector<double> out(num_claims,
                          (1.0 - p_true) /
                              static_cast<double>(num_claims - 1));
  out[true_claim] = p_true;
  return out;
}

Result<std::vector<double>> PerfectOracle::Answer(const Database& db,
                                                  ItemId item,
                                                  const GroundTruth& truth,
                                                  Rng* /*rng*/) {
  VERITAS_RETURN_IF_ERROR(RequireTruth(db, item, truth));
  return SpreadDistribution(db.num_claims(item), truth.TrueClaim(item), 1.0);
}

ConfidenceOracle::ConfidenceOracle(double confidence)
    : confidence_(confidence) {
  assert(confidence > 0.0 && confidence <= 1.0);
}

std::string ConfidenceOracle::name() const {
  return "confidence:" + FormatDouble(confidence_, 2);
}

Result<std::vector<double>> ConfidenceOracle::Answer(const Database& db,
                                                     ItemId item,
                                                     const GroundTruth& truth,
                                                     Rng* /*rng*/) {
  VERITAS_RETURN_IF_ERROR(RequireTruth(db, item, truth));
  return SpreadDistribution(db.num_claims(item), truth.TrueClaim(item),
                            confidence_);
}

IncorrectOracle::IncorrectOracle(double error_rate) : error_rate_(error_rate) {
  assert(error_rate >= 0.0 && error_rate <= 1.0);
}

std::string IncorrectOracle::name() const {
  return "incorrect:" + FormatDouble(error_rate_, 2);
}

Result<std::vector<double>> IncorrectOracle::Answer(const Database& db,
                                                    ItemId item,
                                                    const GroundTruth& truth,
                                                    Rng* rng) {
  VERITAS_RETURN_IF_ERROR(RequireTruth(db, item, truth));
  assert(rng != nullptr && "IncorrectOracle requires an Rng");
  const std::size_t n = db.num_claims(item);
  const ClaimIndex t = truth.TrueClaim(item);
  if (n > 1 && rng->Bernoulli(error_rate_)) {
    // Wrong feedback: truth zeroed, uniform over the remaining claims
    // (§4.4, "Incorrect feedback").
    return SpreadDistribution(n, t, 0.0);
  }
  return SpreadDistribution(n, t, 1.0);
}

namespace {

// Parses "<a>" or "<a>,<b>" numeric parameter lists.
Result<std::vector<double>> ParseParams(const std::string& text,
                                        std::size_t expected) {
  const std::vector<std::string> parts = Split(text, ',');
  if (parts.size() != expected) {
    return Status::InvalidArgument("expected " + std::to_string(expected) +
                                   " oracle parameter(s), got '" + text +
                                   "'");
  }
  std::vector<double> out;
  for (const std::string& part : parts) {
    char* end = nullptr;
    const double parsed = std::strtod(part.c_str(), &end);
    if (end == part.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad oracle parameter: '" + part + "'");
    }
    out.push_back(parsed);
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<FeedbackOracle>> MakeOracle(const std::string& spec) {
  if (spec == "perfect") {
    return std::unique_ptr<FeedbackOracle>(new PerfectOracle());
  }
  const std::size_t colon = spec.find(':');
  const std::string kind =
      colon == std::string::npos ? spec : spec.substr(0, colon);
  const std::string params =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  if (kind == "confidence") {
    VERITAS_ASSIGN_OR_RETURN(auto p, ParseParams(params, 1));
    if (p[0] <= 0.0 || p[0] > 1.0) {
      return Status::InvalidArgument("confidence must be in (0, 1]");
    }
    return std::unique_ptr<FeedbackOracle>(new ConfidenceOracle(p[0]));
  }
  if (kind == "incorrect") {
    VERITAS_ASSIGN_OR_RETURN(auto p, ParseParams(params, 1));
    if (p[0] < 0.0 || p[0] > 1.0) {
      return Status::InvalidArgument("error rate must be in [0, 1]");
    }
    return std::unique_ptr<FeedbackOracle>(new IncorrectOracle(p[0]));
  }
  if (kind == "conflicting") {
    VERITAS_ASSIGN_OR_RETURN(auto p, ParseParams(params, 2));
    if (p[0] < 0.0 || p[0] > 1.0 || p[1] < 0.0 || p[1] > 1.0) {
      return Status::InvalidArgument(
          "conflicting parameters must be in [0, 1]");
    }
    return std::unique_ptr<FeedbackOracle>(new ConflictingOracle(p[0], p[1]));
  }
  return Status::NotFound("unknown oracle: " + spec);
}

ConflictingOracle::ConflictingOracle(double conflict_fraction,
                                     double consensus)
    : conflict_fraction_(conflict_fraction), consensus_(consensus) {
  assert(conflict_fraction >= 0.0 && conflict_fraction <= 1.0);
  assert(consensus >= 0.0 && consensus <= 1.0);
}

std::string ConflictingOracle::name() const {
  return "conflicting:" + FormatDouble(conflict_fraction_, 2) + "," +
         FormatDouble(consensus_, 2);
}

Result<std::vector<double>> ConflictingOracle::Answer(const Database& db,
                                                      ItemId item,
                                                      const GroundTruth& truth,
                                                      Rng* rng) {
  VERITAS_RETURN_IF_ERROR(RequireTruth(db, item, truth));
  assert(rng != nullptr && "ConflictingOracle requires an Rng");
  const std::size_t n = db.num_claims(item);
  const ClaimIndex t = truth.TrueClaim(item);
  if (n > 1 && rng->Bernoulli(conflict_fraction_)) {
    // The crowd disagrees: the true claim only receives `consensus` mass
    // (§4.4, "Conflicting feedback").
    return SpreadDistribution(n, t, consensus_);
  }
  return SpreadDistribution(n, t, 1.0);
}

}  // namespace veritas
