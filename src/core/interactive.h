// InteractiveSession: the ask/answer API for embedding the feedback
// framework into a real application (UI, labeling tool, crowdsourcing
// frontend). Unlike FeedbackSession — which simulates the user with an
// oracle — this class hands control to the caller: it suggests the next
// most valuable item (Figure 1's loop) and accepts whatever feedback the
// caller obtained, in any order.
#ifndef VERITAS_CORE_INTERACTIVE_H_
#define VERITAS_CORE_INTERACTIVE_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "core/strategy.h"
#include "fusion/fusion_model.h"
#include "model/ground_truth.h"
#include "util/result.h"

namespace veritas {

/// A suggestion returned by InteractiveSession::NextSuggestion.
struct Suggestion {
  ItemId item = kInvalidItem;
  std::string item_name;
  /// The claim values to present to the user, in claim-index order.
  std::vector<std::string> claim_values;
  /// Current fusion probabilities of those claims.
  std::vector<double> current_probs;
};

/// Interactive feedback loop around one database + fusion model + strategy.
class InteractiveSession {
 public:
  /// All referenced objects must outlive the session. `rng` may be null for
  /// deterministic strategies.
  InteractiveSession(const Database& db, const FusionModel& model,
                     Strategy* strategy, FusionOptions fusion_options,
                     Rng* rng = nullptr);

  /// The most valuable unvalidated item right now, with its claims and the
  /// current fusion beliefs; NotFound when everything is validated.
  Result<Suggestion> NextSuggestion();

  /// Up to `n` suggestions, best first (for batched UIs, §4.3).
  std::vector<Suggestion> NextSuggestions(std::size_t n);

  /// Records that the user validated `claim` as the true claim of `item`
  /// and re-fuses.
  Status SubmitExactFeedback(ItemId item, ClaimIndex claim);

  /// Same by value string.
  Status SubmitExactFeedback(const std::string& item,
                             const std::string& value);

  /// Records distribution feedback (confidence/crowd answers, §4.4) and
  /// re-fuses.
  Status SubmitFeedback(ItemId item, std::vector<double> distribution);

  /// Removes previously submitted feedback (the user changed their mind)
  /// and re-fuses.
  Status RetractFeedback(ItemId item);

  /// Records that `item` cannot be answered (the expert is unreachable or
  /// declines): it stops being suggested and NextSuggestion moves on to the
  /// next-best item, so one dead question never stalls the loop.
  Status MarkUnanswerable(ItemId item);

  /// Lifts a previous MarkUnanswerable (the expert came back).
  void ClearUnanswerable(ItemId item) { unanswerable_.erase(item); }

  /// Items currently marked unanswerable.
  std::size_t num_unanswerable() const { return unanswerable_.size(); }

  /// Current fusion output.
  const FusionResult& fusion() const { return fusion_; }

  /// Validated knowledge accumulated so far.
  const PriorSet& priors() const { return priors_; }

  /// Total output entropy — the uncertainty readout a UI would display.
  double CurrentUncertainty() const { return fusion_.TotalEntropy(); }

  /// Number of items validated so far.
  std::size_t num_validated() const { return priors_.size(); }

  /// Re-fusions that reported converged() == false (§3's caveat surfaced).
  std::size_t num_nonconverged_fusions() const {
    return nonconverged_fusions_;
  }

  /// Re-fusions discarded because they contained non-finite probabilities;
  /// the session kept the last-good result instead (graceful degradation).
  std::size_t num_fusion_fallbacks() const { return fusion_fallbacks_; }

 private:
  StrategyContext MakeContext();
  void Refuse();

  const Database& db_;
  const FusionModel& model_;
  Strategy* strategy_;
  FusionOptions fusion_options_;
  Rng* rng_;
  ItemGraph graph_;
  PriorSet priors_;
  FusionResult fusion_;
  std::unordered_set<ItemId> unanswerable_;
  std::size_t nonconverged_fusions_ = 0;
  std::size_t fusion_fallbacks_ = 0;
};

}  // namespace veritas

#endif  // VERITAS_CORE_INTERACTIVE_H_
