// Approx-MEU (§4.2.3, Algorithm 2, Appendix A.1): the scalable VPI strategy.
//
// Instead of re-running fusion for every hypothesized validation, Approx-MEU
// analytically estimates the first-order (differential) change a validation
// of item o_i induces in the claim probabilities of its one-hop neighbours:
//
//   1. Validating claim v_i^t changes o_i's probabilities by
//        dp_i^t = 1 - p_i^t,   dp_i^f = -p_i^f          (§4.2.3)
//   2. Eq. (9): every source s voting claim v_i^l on o_i shifts accuracy by
//        dA(s) = dp_i^l / N(s)
//   3. Eq. (10): a neighbour item o_j's claim v_j^r shifts by
//        dp_j^r = -(p_j^r)^2 sum_v f(r,v) (g(v) - g(r))
//      with g(v) = sum_{s in S(v)} dA(s) / (A(s)(1 - A(s))).
//      Substituting f(r,v) = p_j^v / p_j^r collapses this to the closed form
//        dp_j^r = p_j^r (g(r) - sum_v p_j^v g(v)),
//      which sums to zero over an item's claims (distributions stay
//      normalized to first order). Both forms are implemented; tests verify
//      they agree.
//   4. Items more than one hop away are untouched — Theorem 4.1 shows the
//      change decays as (1/N)^d with hop distance d.
//
// The expected entropy after validating o_i (Eq. 13) is then computed over
// the *estimated* probabilities, and the item with the maximum expected
// entropy reduction is selected. Requires ctx.graph.
#ifndef VERITAS_CORE_APPROX_MEU_H_
#define VERITAS_CORE_APPROX_MEU_H_

#include <memory>
#include <unordered_map>

#include "core/strategy.h"
#include "fusion/sharded_scan.h"
#include "util/thread_pool.h"

namespace veritas {

/// Per-source accuracy deltas induced by a hypothesized validation (Eq. 9).
using AccuracyDeltas = std::unordered_map<SourceId, double>;

/// Computes Eq. (9): the accuracy deltas of all sources voting on `item`,
/// under the hypothesis that claim `true_claim` is validated as true.
AccuracyDeltas ComputeAccuracyDeltas(const Database& db,
                                     const FusionResult& fusion, ItemId item,
                                     ClaimIndex true_claim);

/// Estimated post-validation distribution of item `j` given source accuracy
/// deltas, using the closed-form first-order update (fast path). Entries are
/// clamped into [0, 1].
std::vector<double> EstimateUpdatedProbs(const Database& db,
                                         const FusionResult& fusion, ItemId j,
                                         const AccuracyDeltas& deltas);

/// Literal Eq. (10) implementation (ratio-of-products form). Used to verify
/// the fast path; O(|V_j|^2) instead of O(|V_j|).
std::vector<double> EstimateUpdatedProbsLiteral(const Database& db,
                                                const FusionResult& fusion,
                                                ItemId j,
                                                const AccuracyDeltas& deltas);

/// The Approx-MEU strategy.
class ApproxMeuStrategy : public Strategy {
 public:
  /// `num_threads` > 1 scores candidates concurrently on a persistent
  /// work-stealing pool; the differential estimates are independent, so the
  /// results are identical to the sequential run.
  explicit ApproxMeuStrategy(std::size_t num_threads = 1)
      : num_threads_(num_threads == 0 ? 1 : num_threads) {}

  std::string name() const override { return "approx_meu"; }

  std::size_t num_threads() const { return num_threads_; }

  std::vector<ItemId> SelectBatch(const StrategyContext& ctx,
                                  std::size_t batch) override;

  /// Expected total entropy after validating `item`, under the differential
  /// estimate (the EU* of Table 9). When `impact_filter` is non-null, only
  /// neighbour items j with (*impact_filter)[j] participate in the impact
  /// computation (used by Approx-MEU_k, §4.3).
  static double ExpectedEntropyAfterValidation(
      const StrategyContext& ctx, ItemId item,
      const std::vector<bool>* impact_filter);

  /// Scores Delta-EU (Eq. 13 gain) for each candidate; shared with the
  /// hybrid strategy. With a non-null `pool` (and enough candidates), the
  /// scan fans out over its lanes; gains land in disjoint slots so the
  /// result is lane-count independent. A non-null `confine` restricts each
  /// candidate's neighbour impact to the candidate's own shard of the
  /// partition — the sharded stage-1 semantics — which lets one pooled pass
  /// score candidates of *different* shards concurrently (confinement is a
  /// pure per-(i, j) predicate, so no cross-shard state is shared).
  static std::vector<double> ScoreCandidates(
      const StrategyContext& ctx, const std::vector<ItemId>& candidates,
      const std::vector<bool>* impact_filter, ThreadPool* pool = nullptr,
      const ShardPartition* confine = nullptr);

 private:
  /// The sharded two-stage selection behind FusionOptions::shards > 1
  /// (fusion/sharded_scan.h): per-shard scans whose impact_filter confines
  /// each candidate's neighbour impact to its own shard, a deterministic
  /// top-quota merge, then an unfiltered re-score of the merged pool.
  /// Requires ctx.delta (for the compiled view the partition is built on).
  std::vector<ItemId> SelectBatchSharded(const StrategyContext& ctx,
                                         const std::vector<ItemId>& candidates,
                                         std::size_t batch, std::size_t shards);

  std::size_t num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // Lazy; persists across rounds.
  ShardedScanPlan shard_plan_;  // Cached partition (epoch/shard-count keyed).
};

}  // namespace veritas

#endif  // VERITAS_CORE_APPROX_MEU_H_
