#include "core/random_strategy.h"

#include <cassert>

namespace veritas {

std::vector<ItemId> RandomStrategy::SelectBatch(const StrategyContext& ctx,
                                                std::size_t batch) {
  assert(ctx.rng != nullptr && "RandomStrategy requires ctx.rng");
  std::vector<ItemId> candidates = CandidateItems(ctx);
  ctx.rng->Shuffle(&candidates);
  if (candidates.size() > batch) candidates.resize(batch);
  return candidates;
}

}  // namespace veritas
