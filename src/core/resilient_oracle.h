// FeedbackOracle decorators for degraded operation. The paper's oracle
// abstraction (§4.4) assumes every validation request is answered; these
// wrappers make the failure modes of real experts and crowds first-class
// while leaving the abstraction itself untouched:
//
//   FlakyOracle    — test double: injects Unavailable / timeout / abstain
//                    faults (and latency spikes) from a deterministic
//                    FaultPlan before consulting the wrapped oracle.
//   RetryingOracle — production decorator: re-asks the wrapped oracle under
//                    a RetryPolicy and surfaces per-item attempt counts.
//
// The two compose: RetryingOracle(FlakyOracle(PerfectOracle)) is the
// standard harness for exercising a session's graceful degradation path.
#ifndef VERITAS_CORE_RESILIENT_ORACLE_H_
#define VERITAS_CORE_RESILIENT_ORACLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/oracle.h"
#include "util/fault_injection.h"
#include "util/retry.h"

namespace veritas {

/// Wraps any oracle with injected faults from a deterministic plan; the test
/// double for every robustness scenario. Owns its FaultInjector (one site,
/// "oracle") so two FlakyOracles never share streams.
class FlakyOracle : public FeedbackOracle {
 public:
  /// Non-owning: `inner` must outlive the decorator.
  FlakyOracle(FeedbackOracle* inner, FaultPlan plan, std::uint64_t seed = 42);
  /// Owning variant for factory-built chains.
  FlakyOracle(std::unique_ptr<FeedbackOracle> inner, FaultPlan plan,
              std::uint64_t seed = 42);

  std::string name() const override;
  Result<std::vector<double>> Answer(const Database& db, ItemId item,
                                     const GroundTruth& truth,
                                     Rng* rng) override;

  /// Calls seen / faults injected so far.
  std::size_t num_calls() const { return injector_.calls(kSite); }
  std::size_t num_faults() const { return injector_.faults(kSite); }
  /// Total injected (virtual) latency, seconds.
  double simulated_latency_seconds() const { return simulated_latency_; }

  /// The underlying injector, e.g. to rewire the plan mid-test.
  FaultInjector* mutable_injector() { return &injector_; }

  std::string SerializeState() const override;
  Status RestoreState(const std::string& state) override;

 private:
  static constexpr const char* kSite = "oracle";

  FeedbackOracle* inner_;
  std::unique_ptr<FeedbackOracle> owned_;
  FaultInjector injector_;
  double simulated_latency_ = 0.0;
};

/// Per-oracle aggregate retry accounting.
struct OracleRetryStats {
  std::size_t total_attempts = 0;  ///< Oracle calls issued, incl. first tries.
  std::size_t total_retries = 0;   ///< Attempts beyond the first per answer.
  std::size_t exhausted = 0;       ///< Answers that still failed after retry.
  double total_backoff_seconds = 0.0;  ///< Virtual backoff accumulated.
};

/// Wraps any oracle with a RetryPolicy: transient failures (Unavailable,
/// DeadlineExceeded) are retried with exponential backoff; abstentions and
/// hard errors fail fast. Per-item attempt counts are kept so a session
/// trace can report how hard each validation was.
class RetryingOracle : public FeedbackOracle {
 public:
  /// Non-owning: `inner` must outlive the decorator.
  RetryingOracle(FeedbackOracle* inner, RetryPolicy policy);
  /// Owning variant for factory-built chains.
  RetryingOracle(std::unique_ptr<FeedbackOracle> inner, RetryPolicy policy);

  std::string name() const override;
  Result<std::vector<double>> Answer(const Database& db, ItemId item,
                                     const GroundTruth& truth,
                                     Rng* rng) override;

  std::size_t last_attempts() const override { return last_attempts_; }
  const OracleRetryStats& stats() const { return stats_; }
  /// Attempts spent per item across the oracle's lifetime.
  const std::unordered_map<ItemId, std::size_t>& attempts_per_item() const {
    return attempts_per_item_;
  }

  std::string SerializeState() const override;
  Status RestoreState(const std::string& state) override;

 private:
  FeedbackOracle* inner_;
  std::unique_ptr<FeedbackOracle> owned_;
  RetryPolicy policy_;
  std::size_t last_attempts_ = 1;
  OracleRetryStats stats_;
  std::unordered_map<ItemId, std::size_t> attempts_per_item_;
};

}  // namespace veritas

#endif  // VERITAS_CORE_RESILIENT_ORACLE_H_
