// Quickstart: build a tiny conflicting database, fuse it, and run a few
// rounds of guided feedback with Approx-MEU.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/approx_meu.h"
#include "core/metrics.h"
#include "core/oracle.h"
#include "core/session.h"
#include "fusion/accu.h"
#include "model/database_builder.h"

using namespace veritas;

int main() {
  // 1. Describe who claims what. Three weather sites report the temperature
  //    of four cities; they disagree on some of them.
  DatabaseBuilder builder;
  struct Obs {
    const char* source;
    const char* item;
    const char* value;
  };
  const Obs observations[] = {
      {"wsite-a", "berlin", "21C"},  {"wsite-b", "berlin", "21C"},
      {"wsite-c", "berlin", "19C"},  {"wsite-a", "paris", "24C"},
      {"wsite-b", "paris", "22C"},   {"wsite-a", "oslo", "14C"},
      {"wsite-c", "oslo", "14C"},    {"wsite-b", "madrid", "31C"},
      {"wsite-c", "madrid", "29C"},
  };
  for (const Obs& o : observations) {
    const Status st = builder.AddObservation(o.source, o.item, o.value);
    if (!st.ok()) {
      std::fprintf(stderr, "bad observation: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  const Database db = builder.Build();

  // 2. Fuse with AccuNoDep: probabilities per claim + source accuracies.
  AccuFusion fusion_model;
  FusionOptions fusion_opts;
  const FusionResult fused = fusion_model.Fuse(db, fusion_opts);

  std::printf("== fusion output ==\n");
  for (ItemId i = 0; i < db.num_items(); ++i) {
    const Item& item = db.item(i);
    std::printf("%-8s:", item.name.c_str());
    for (ClaimIndex k = 0; k < item.claims.size(); ++k) {
      std::printf("  %s (p=%.3f)", item.claims[k].value.c_str(),
                  fused.prob(i, k));
    }
    std::printf("\n");
  }
  for (SourceId j = 0; j < db.num_sources(); ++j) {
    std::printf("accuracy(%s) = %.3f\n", db.source(j).name.c_str(),
                fused.accuracy(j));
  }

  // 3. Let Approx-MEU pick the most valuable item to validate.
  const GroundTruth truth = [&db]() {
    GroundTruth t(db);
    t.SetByValue(db, "berlin", "21C");
    t.SetByValue(db, "paris", "24C");
    t.SetByValue(db, "oslo", "14C");
    t.SetByValue(db, "madrid", "29C");
    return t;
  }();

  ApproxMeuStrategy strategy;
  PerfectOracle oracle;
  SessionOptions session_opts;
  session_opts.max_validations = 2;
  FeedbackSession session(db, fusion_model, &strategy, &oracle, truth,
                          session_opts, /*rng=*/nullptr);
  const auto trace = session.Run();
  if (!trace.ok()) {
    std::fprintf(stderr, "session failed: %s\n",
                 trace.status().ToString().c_str());
    return 1;
  }

  std::printf("\n== guided feedback (Approx-MEU, perfect oracle) ==\n");
  std::printf("initial distance_to_ground_truth = %.4f\n",
              trace->initial_distance);
  for (std::size_t s = 0; s < trace->steps.size(); ++s) {
    const SessionStep& step = trace->steps[s];
    std::printf("validated %-8s -> distance %.4f  (reduction %+.1f%%)\n",
                db.item(step.items[0]).name.c_str(), step.distance,
                trace->DistanceReductionPercent(s));
  }
  return 0;
}
