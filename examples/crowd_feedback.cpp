// Crowd-feedback scenario (paper §4.4): feedback is imperfect — the crowd
// sometimes disagrees or is plainly wrong. Shows how Approx-MEU degrades
// gracefully as feedback quality drops, on a Books-like long-tail dataset.
//
//   $ ./build/examples/crowd_feedback
#include <cstdio>
#include <memory>
#include <vector>

#include "core/oracle.h"
#include "data/synthetic.h"
#include "exp/harness.h"
#include "fusion/accu.h"

using namespace veritas;

int main() {
  LongTailConfig config;
  config.num_items = 300;
  config.num_sources = 210;
  config.avg_votes_per_item = 19.0;
  config.seed = 4242;
  const SyntheticDataset dataset = GenerateLongTail(config);

  AccuFusion model;
  CurveOptions options;
  options.report_fractions = {0.05, 0.10, 0.15};
  options.seed = 5;

  struct Scenario {
    const char* label;
    std::unique_ptr<FeedbackOracle> oracle;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"perfect expert", std::make_unique<PerfectOracle>()});
  scenarios.push_back(
      {"90% confident user", std::make_unique<ConfidenceOracle>(0.9)});
  scenarios.push_back(
      {"crowd, 30% disputed at 0.7 consensus",
       std::make_unique<ConflictingOracle>(0.3, 0.7)});
  scenarios.push_back(
      {"user wrong on 10% of items", std::make_unique<IncorrectOracle>(0.1)});

  std::printf("Approx-MEU on a Books-like dataset under different feedback "
              "quality:\n");
  for (Scenario& s : scenarios) {
    const auto curve = RunCurve(dataset.db, dataset.truth, model,
                                "approx_meu", s.oracle.get(), options);
    if (!curve.ok()) {
      std::fprintf(stderr, "scenario '%s' failed: %s\n", s.label,
                   curve.status().ToString().c_str());
      return 1;
    }
    std::printf("\n%-38s", s.label);
    for (const CurvePoint& p : curve->points) {
      std::printf("  [%2.0f%% -> %+6.1f%%]", p.fraction * 100.0,
                  p.distance_reduction_pct);
    }
    std::printf("\n");
  }
  std::printf("\n(each bracket: %% of items validated -> change in distance "
              "to ground truth; more negative is better)\n");
  return 0;
}
