// The paper's running example (Table 1): four sources claim directors for
// six animation movies. This program replays the worked numbers of the
// paper: the fusion output (Table 3), the QBC/US entropies (Examples
// 4.1/4.2), the exact MEU expected utilities (Table 6) and the Approx-MEU
// expected utilities (Table 9).
//
//   $ ./build/examples/movie_directors
#include <cstdio>

#include "core/approx_meu.h"
#include "core/meu.h"
#include "core/qbc.h"
#include "core/strategy.h"
#include "core/us.h"
#include "data/example_data.h"
#include "fusion/accu.h"

using namespace veritas;

int main() {
  const Database db = MakeMovieDatabase();
  const GroundTruth truth = MakeMovieGroundTruth(db);

  AccuFusion model;
  FusionOptions opts;
  const FusionResult fused = model.Fuse(db, opts);

  std::printf("== Table 3: output of data fusion ==\n");
  for (ItemId i = 0; i < db.num_items(); ++i) {
    const Item& item = db.item(i);
    std::printf("O%-2u %-14s:", i + 1, item.name.c_str());
    for (ClaimIndex k = 0; k < item.claims.size(); ++k) {
      std::printf("  %s (%.3f)", item.claims[k].value.c_str(),
                  fused.prob(i, k));
    }
    std::printf("\n");
  }

  std::printf("\n== Examples 4.1/4.2: vote entropy (QBC) and fusion-output "
              "entropy (US) ==\n");
  for (ItemId i = 0; i < db.num_items(); ++i) {
    std::printf("O%-2u %-14s: vote entropy %.3f   output entropy %.3f\n",
                i + 1, db.item(i).name.c_str(), VoteEntropy(db, i),
                fused.ItemEntropy(i));
  }

  const PriorSet no_priors;
  const ItemGraph graph(db);
  StrategyContext ctx;
  ctx.db = &db;
  ctx.fusion = &fused;
  ctx.priors = &no_priors;
  ctx.model = &model;
  ctx.fusion_opts = &opts;
  ctx.ground_truth = &truth;
  ctx.graph = &graph;
  ctx.include_singletons = true;  // The paper's example scores O4 too.

  std::printf("\n== Table 6: exact MEU expected utilities EU* ==\n");
  std::printf("(current total entropy EU = %.3f)\n", fused.TotalEntropy());
  for (ItemId i = 0; i < db.num_items(); ++i) {
    std::printf("O%-2u %-14s: EU* = %.3f\n", i + 1, db.item(i).name.c_str(),
                MeuStrategy::ExpectedEntropyAfterValidation(ctx, i));
  }

  std::printf("\n== Table 9: Approx-MEU expected utilities EU* ==\n");
  for (ItemId i = 0; i < db.num_items(); ++i) {
    std::printf("O%-2u %-14s: EU* = %.3f\n", i + 1, db.item(i).name.c_str(),
                ApproxMeuStrategy::ExpectedEntropyAfterValidation(
                    ctx, i, /*impact_filter=*/nullptr));
  }

  MeuStrategy meu;
  ApproxMeuStrategy approx;
  QbcStrategy qbc;
  UsStrategy us;
  std::printf("\n== next action per strategy ==\n");
  auto report = [&](const char* name, Strategy* s) {
    const ItemId pick = s->SelectNext(ctx);
    std::printf("%-11s would validate %s\n", name,
                pick == kInvalidItem ? "(none)" : db.item(pick).name.c_str());
  };
  report("QBC", &qbc);
  report("US", &us);
  report("MEU", &meu);
  report("Approx-MEU", &approx);
  return 0;
}
