// Flight-status scenario: a dense dataset in the shape of the paper's
// FlightsDay snapshot (38 sources covering most items). Compares how fast
// QBC, US and Approx-MEU steer fusion toward ground truth when an expert
// validates 10% of the conflicting items.
//
//   $ ./build/examples/flight_status [items]
#include <cstdio>
#include <cstdlib>

#include "core/metrics.h"
#include "data/dataset_stats.h"
#include "data/synthetic.h"
#include "exp/harness.h"
#include "fusion/accu.h"

using namespace veritas;

int main(int argc, char** argv) {
  DenseConfig config;
  config.num_items = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  config.num_sources = 38;
  config.density = 0.36;
  config.seed = 2026;
  const SyntheticDataset dataset = GenerateDense(config);

  const DatasetStats stats = ComputeStats(dataset.db);
  std::printf("flight-status dataset: %zu items, %zu sources, %zu votes, "
              "%zu conflicting items\n",
              stats.items, stats.sources, stats.observations,
              stats.conflicting_items);

  AccuFusion model;
  CurveOptions options;
  options.report_fractions = {0.02, 0.05, 0.10};
  options.seed = 99;

  for (const char* strategy : {"random", "qbc", "us", "approx_meu"}) {
    const auto curve = RunCurvePerfect(dataset.db, dataset.truth, model,
                                       strategy, options);
    if (!curve.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", strategy,
                   curve.status().ToString().c_str());
      return 1;
    }
    std::printf("\n%-11s (%.4f s/action)\n", strategy,
                curve->mean_select_seconds);
    for (const CurvePoint& p : curve->points) {
      std::printf("  %4.0f%% validated: distance %+6.1f%%  uncertainty "
                  "%+6.1f%%\n",
                  p.fraction * 100.0, p.distance_reduction_pct,
                  p.uncertainty_reduction_pct);
    }
  }
  std::printf("\n(negative percentages = improvement over unaided fusion)\n");
  return 0;
}
