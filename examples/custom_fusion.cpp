// Extending Veritas with your own fusion model.
//
// The feedback framework treats fusion as a black box (paper §3): anything
// implementing FusionModel can be driven by every strategy. This example
// implements a trivial "trusted sources" model — fixed per-source trust
// weights, claims scored by the sum of their supporters' trust — and runs
// a guided feedback session over it.
//
//   $ ./build/examples/custom_fusion
#include <algorithm>
#include <cstdio>

#include "core/oracle.h"
#include "core/session.h"
#include "core/us.h"
#include "data/synthetic.h"
#include "fusion/fusion_model.h"
#include "util/math.h"

using namespace veritas;

namespace {

// A fusion model with *static* trust: sources listed in `trusted` count
// double. Claim probability = normalized trust mass of its supporters.
// Pinned items keep their prior, like every Veritas fusion model.
class TrustedSourcesFusion : public FusionModel {
 public:
  explicit TrustedSourcesFusion(std::vector<SourceId> trusted)
      : trusted_(std::move(trusted)) {}

  std::string name() const override { return "trusted_sources"; }

  FusionResult Fuse(const Database& db, const PriorSet& priors,
                    const FusionOptions& opts) const override {
    FusionResult result(db, opts.initial_accuracy);
    for (ItemId i = 0; i < db.num_items(); ++i) {
      std::vector<double>* probs = result.mutable_item_probs(i);
      if (priors.Has(i)) {
        *probs = priors.Get(i);
        continue;
      }
      std::vector<double> mass(db.num_claims(i), 0.0);
      for (const ItemVote& vote : db.item_votes(i)) {
        mass[vote.claim] += IsTrusted(vote.source) ? 2.0 : 1.0;
      }
      *probs = Normalize(mass);
    }
    result.set_iterations(1);
    result.set_converged(true);
    return result;
  }

 private:
  bool IsTrusted(SourceId source) const {
    for (SourceId t : trusted_) {
      if (t == source) return true;
    }
    return false;
  }

  std::vector<SourceId> trusted_;
};

}  // namespace

int main() {
  DenseConfig config;
  config.num_items = 120;
  config.num_sources = 12;
  config.density = 0.5;
  config.seed = 314;
  const SyntheticDataset data = GenerateDense(config);

  // Trust the three sources with the highest generated accuracy (in a real
  // deployment this would come from domain knowledge).
  std::vector<SourceId> trusted;
  for (int round = 0; round < 3; ++round) {
    SourceId best = kInvalidSource;
    for (SourceId j = 0; j < data.db.num_sources(); ++j) {
      const bool taken =
          std::find(trusted.begin(), trusted.end(), j) != trusted.end();
      if (taken) continue;
      if (best == kInvalidSource ||
          data.true_accuracies[j] > data.true_accuracies[best]) {
        best = j;
      }
    }
    trusted.push_back(best);
  }
  TrustedSourcesFusion model(trusted);

  std::printf("custom fusion model '%s' with %zu trusted sources\n",
              model.name().c_str(), trusted.size());

  UsStrategy strategy;  // Any strategy works against any FusionModel.
  PerfectOracle oracle;
  SessionOptions options;
  options.max_validations = 15;
  FeedbackSession session(data.db, model, &strategy, &oracle, data.truth,
                          options, /*rng=*/nullptr);
  const auto trace = session.Run();
  if (!trace.ok()) {
    std::fprintf(stderr, "session failed: %s\n",
                 trace.status().ToString().c_str());
    return 1;
  }
  std::printf("initial distance %.4f\n", trace->initial_distance);
  for (std::size_t s = 0; s < trace->steps.size(); s += 5) {
    std::printf("after %2zu validations: distance %.4f (%+.1f%%)\n",
                trace->steps[s].num_validated, trace->steps[s].distance,
                trace->DistanceReductionPercent(s));
  }
  std::printf("after %2zu validations: distance %.4f (%+.1f%%)\n",
              trace->steps.back().num_validated, trace->steps.back().distance,
              trace->DistanceReductionPercent(trace->steps.size() - 1));
  return 0;
}
