file(REMOVE_RECURSE
  "CMakeFiles/crowd_feedback.dir/crowd_feedback.cpp.o"
  "CMakeFiles/crowd_feedback.dir/crowd_feedback.cpp.o.d"
  "crowd_feedback"
  "crowd_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
