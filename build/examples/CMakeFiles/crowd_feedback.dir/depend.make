# Empty dependencies file for crowd_feedback.
# This may be replaced when dependencies are built.
