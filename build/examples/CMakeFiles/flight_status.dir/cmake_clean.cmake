file(REMOVE_RECURSE
  "CMakeFiles/flight_status.dir/flight_status.cpp.o"
  "CMakeFiles/flight_status.dir/flight_status.cpp.o.d"
  "flight_status"
  "flight_status.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flight_status.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
