# Empty dependencies file for flight_status.
# This may be replaced when dependencies are built.
