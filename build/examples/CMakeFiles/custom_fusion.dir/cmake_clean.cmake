file(REMOVE_RECURSE
  "CMakeFiles/custom_fusion.dir/custom_fusion.cpp.o"
  "CMakeFiles/custom_fusion.dir/custom_fusion.cpp.o.d"
  "custom_fusion"
  "custom_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
