# Empty compiler generated dependencies file for custom_fusion.
# This may be replaced when dependencies are built.
