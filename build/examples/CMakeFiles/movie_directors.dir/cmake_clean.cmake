file(REMOVE_RECURSE
  "CMakeFiles/movie_directors.dir/movie_directors.cpp.o"
  "CMakeFiles/movie_directors.dir/movie_directors.cpp.o.d"
  "movie_directors"
  "movie_directors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_directors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
