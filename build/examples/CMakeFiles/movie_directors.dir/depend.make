# Empty dependencies file for movie_directors.
# This may be replaced when dependencies are built.
