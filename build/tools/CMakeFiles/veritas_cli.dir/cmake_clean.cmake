file(REMOVE_RECURSE
  "CMakeFiles/veritas_cli.dir/veritas_cli.cc.o"
  "CMakeFiles/veritas_cli.dir/veritas_cli.cc.o.d"
  "veritas_cli"
  "veritas_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veritas_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
