# Empty dependencies file for veritas_cli.
# This may be replaced when dependencies are built.
