file(REMOVE_RECURSE
  "CMakeFiles/veritas_crowd.dir/crowd/consolidation.cc.o"
  "CMakeFiles/veritas_crowd.dir/crowd/consolidation.cc.o.d"
  "CMakeFiles/veritas_crowd.dir/crowd/worker_pool.cc.o"
  "CMakeFiles/veritas_crowd.dir/crowd/worker_pool.cc.o.d"
  "libveritas_crowd.a"
  "libveritas_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veritas_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
