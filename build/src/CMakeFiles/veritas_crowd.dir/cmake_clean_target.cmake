file(REMOVE_RECURSE
  "libveritas_crowd.a"
)
