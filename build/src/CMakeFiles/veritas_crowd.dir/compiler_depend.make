# Empty compiler generated dependencies file for veritas_crowd.
# This may be replaced when dependencies are built.
