file(REMOVE_RECURSE
  "CMakeFiles/veritas_util.dir/util/args.cc.o"
  "CMakeFiles/veritas_util.dir/util/args.cc.o.d"
  "CMakeFiles/veritas_util.dir/util/csv.cc.o"
  "CMakeFiles/veritas_util.dir/util/csv.cc.o.d"
  "CMakeFiles/veritas_util.dir/util/math.cc.o"
  "CMakeFiles/veritas_util.dir/util/math.cc.o.d"
  "CMakeFiles/veritas_util.dir/util/rng.cc.o"
  "CMakeFiles/veritas_util.dir/util/rng.cc.o.d"
  "CMakeFiles/veritas_util.dir/util/stats.cc.o"
  "CMakeFiles/veritas_util.dir/util/stats.cc.o.d"
  "CMakeFiles/veritas_util.dir/util/status.cc.o"
  "CMakeFiles/veritas_util.dir/util/status.cc.o.d"
  "CMakeFiles/veritas_util.dir/util/strings.cc.o"
  "CMakeFiles/veritas_util.dir/util/strings.cc.o.d"
  "libveritas_util.a"
  "libveritas_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veritas_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
