# Empty compiler generated dependencies file for veritas_util.
# This may be replaced when dependencies are built.
