file(REMOVE_RECURSE
  "libveritas_util.a"
)
