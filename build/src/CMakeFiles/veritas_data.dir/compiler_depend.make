# Empty compiler generated dependencies file for veritas_data.
# This may be replaced when dependencies are built.
