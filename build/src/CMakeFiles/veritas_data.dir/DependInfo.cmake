
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/canonicalize.cc" "src/CMakeFiles/veritas_data.dir/data/canonicalize.cc.o" "gcc" "src/CMakeFiles/veritas_data.dir/data/canonicalize.cc.o.d"
  "/root/repo/src/data/dataset_stats.cc" "src/CMakeFiles/veritas_data.dir/data/dataset_stats.cc.o" "gcc" "src/CMakeFiles/veritas_data.dir/data/dataset_stats.cc.o.d"
  "/root/repo/src/data/example_data.cc" "src/CMakeFiles/veritas_data.dir/data/example_data.cc.o" "gcc" "src/CMakeFiles/veritas_data.dir/data/example_data.cc.o.d"
  "/root/repo/src/data/loader.cc" "src/CMakeFiles/veritas_data.dir/data/loader.cc.o" "gcc" "src/CMakeFiles/veritas_data.dir/data/loader.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/veritas_data.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/veritas_data.dir/data/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/veritas_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veritas_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veritas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
