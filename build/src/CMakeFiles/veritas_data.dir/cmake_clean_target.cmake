file(REMOVE_RECURSE
  "libveritas_data.a"
)
