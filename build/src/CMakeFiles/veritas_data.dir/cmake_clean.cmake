file(REMOVE_RECURSE
  "CMakeFiles/veritas_data.dir/data/canonicalize.cc.o"
  "CMakeFiles/veritas_data.dir/data/canonicalize.cc.o.d"
  "CMakeFiles/veritas_data.dir/data/dataset_stats.cc.o"
  "CMakeFiles/veritas_data.dir/data/dataset_stats.cc.o.d"
  "CMakeFiles/veritas_data.dir/data/example_data.cc.o"
  "CMakeFiles/veritas_data.dir/data/example_data.cc.o.d"
  "CMakeFiles/veritas_data.dir/data/loader.cc.o"
  "CMakeFiles/veritas_data.dir/data/loader.cc.o.d"
  "CMakeFiles/veritas_data.dir/data/synthetic.cc.o"
  "CMakeFiles/veritas_data.dir/data/synthetic.cc.o.d"
  "libveritas_data.a"
  "libveritas_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veritas_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
