# Empty dependencies file for veritas_fusion.
# This may be replaced when dependencies are built.
