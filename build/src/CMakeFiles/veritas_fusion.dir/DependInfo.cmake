
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fusion/accu.cc" "src/CMakeFiles/veritas_fusion.dir/fusion/accu.cc.o" "gcc" "src/CMakeFiles/veritas_fusion.dir/fusion/accu.cc.o.d"
  "/root/repo/src/fusion/accu_copy.cc" "src/CMakeFiles/veritas_fusion.dir/fusion/accu_copy.cc.o" "gcc" "src/CMakeFiles/veritas_fusion.dir/fusion/accu_copy.cc.o.d"
  "/root/repo/src/fusion/fusion_factory.cc" "src/CMakeFiles/veritas_fusion.dir/fusion/fusion_factory.cc.o" "gcc" "src/CMakeFiles/veritas_fusion.dir/fusion/fusion_factory.cc.o.d"
  "/root/repo/src/fusion/fusion_model.cc" "src/CMakeFiles/veritas_fusion.dir/fusion/fusion_model.cc.o" "gcc" "src/CMakeFiles/veritas_fusion.dir/fusion/fusion_model.cc.o.d"
  "/root/repo/src/fusion/fusion_result.cc" "src/CMakeFiles/veritas_fusion.dir/fusion/fusion_result.cc.o" "gcc" "src/CMakeFiles/veritas_fusion.dir/fusion/fusion_result.cc.o.d"
  "/root/repo/src/fusion/lca.cc" "src/CMakeFiles/veritas_fusion.dir/fusion/lca.cc.o" "gcc" "src/CMakeFiles/veritas_fusion.dir/fusion/lca.cc.o.d"
  "/root/repo/src/fusion/pooled_investment.cc" "src/CMakeFiles/veritas_fusion.dir/fusion/pooled_investment.cc.o" "gcc" "src/CMakeFiles/veritas_fusion.dir/fusion/pooled_investment.cc.o.d"
  "/root/repo/src/fusion/priors.cc" "src/CMakeFiles/veritas_fusion.dir/fusion/priors.cc.o" "gcc" "src/CMakeFiles/veritas_fusion.dir/fusion/priors.cc.o.d"
  "/root/repo/src/fusion/truthfinder.cc" "src/CMakeFiles/veritas_fusion.dir/fusion/truthfinder.cc.o" "gcc" "src/CMakeFiles/veritas_fusion.dir/fusion/truthfinder.cc.o.d"
  "/root/repo/src/fusion/voting.cc" "src/CMakeFiles/veritas_fusion.dir/fusion/voting.cc.o" "gcc" "src/CMakeFiles/veritas_fusion.dir/fusion/voting.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/veritas_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veritas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
