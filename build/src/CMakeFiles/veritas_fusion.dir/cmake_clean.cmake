file(REMOVE_RECURSE
  "CMakeFiles/veritas_fusion.dir/fusion/accu.cc.o"
  "CMakeFiles/veritas_fusion.dir/fusion/accu.cc.o.d"
  "CMakeFiles/veritas_fusion.dir/fusion/accu_copy.cc.o"
  "CMakeFiles/veritas_fusion.dir/fusion/accu_copy.cc.o.d"
  "CMakeFiles/veritas_fusion.dir/fusion/fusion_factory.cc.o"
  "CMakeFiles/veritas_fusion.dir/fusion/fusion_factory.cc.o.d"
  "CMakeFiles/veritas_fusion.dir/fusion/fusion_model.cc.o"
  "CMakeFiles/veritas_fusion.dir/fusion/fusion_model.cc.o.d"
  "CMakeFiles/veritas_fusion.dir/fusion/fusion_result.cc.o"
  "CMakeFiles/veritas_fusion.dir/fusion/fusion_result.cc.o.d"
  "CMakeFiles/veritas_fusion.dir/fusion/lca.cc.o"
  "CMakeFiles/veritas_fusion.dir/fusion/lca.cc.o.d"
  "CMakeFiles/veritas_fusion.dir/fusion/pooled_investment.cc.o"
  "CMakeFiles/veritas_fusion.dir/fusion/pooled_investment.cc.o.d"
  "CMakeFiles/veritas_fusion.dir/fusion/priors.cc.o"
  "CMakeFiles/veritas_fusion.dir/fusion/priors.cc.o.d"
  "CMakeFiles/veritas_fusion.dir/fusion/truthfinder.cc.o"
  "CMakeFiles/veritas_fusion.dir/fusion/truthfinder.cc.o.d"
  "CMakeFiles/veritas_fusion.dir/fusion/voting.cc.o"
  "CMakeFiles/veritas_fusion.dir/fusion/voting.cc.o.d"
  "libveritas_fusion.a"
  "libveritas_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veritas_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
