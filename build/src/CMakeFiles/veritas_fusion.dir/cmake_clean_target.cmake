file(REMOVE_RECURSE
  "libveritas_fusion.a"
)
