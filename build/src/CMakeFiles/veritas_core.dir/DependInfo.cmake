
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/approx_meu.cc" "src/CMakeFiles/veritas_core.dir/core/approx_meu.cc.o" "gcc" "src/CMakeFiles/veritas_core.dir/core/approx_meu.cc.o.d"
  "/root/repo/src/core/gub.cc" "src/CMakeFiles/veritas_core.dir/core/gub.cc.o" "gcc" "src/CMakeFiles/veritas_core.dir/core/gub.cc.o.d"
  "/root/repo/src/core/hybrid.cc" "src/CMakeFiles/veritas_core.dir/core/hybrid.cc.o" "gcc" "src/CMakeFiles/veritas_core.dir/core/hybrid.cc.o.d"
  "/root/repo/src/core/interactive.cc" "src/CMakeFiles/veritas_core.dir/core/interactive.cc.o" "gcc" "src/CMakeFiles/veritas_core.dir/core/interactive.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/veritas_core.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/veritas_core.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/meu.cc" "src/CMakeFiles/veritas_core.dir/core/meu.cc.o" "gcc" "src/CMakeFiles/veritas_core.dir/core/meu.cc.o.d"
  "/root/repo/src/core/oracle.cc" "src/CMakeFiles/veritas_core.dir/core/oracle.cc.o" "gcc" "src/CMakeFiles/veritas_core.dir/core/oracle.cc.o.d"
  "/root/repo/src/core/qbc.cc" "src/CMakeFiles/veritas_core.dir/core/qbc.cc.o" "gcc" "src/CMakeFiles/veritas_core.dir/core/qbc.cc.o.d"
  "/root/repo/src/core/random_strategy.cc" "src/CMakeFiles/veritas_core.dir/core/random_strategy.cc.o" "gcc" "src/CMakeFiles/veritas_core.dir/core/random_strategy.cc.o.d"
  "/root/repo/src/core/sequential_meu.cc" "src/CMakeFiles/veritas_core.dir/core/sequential_meu.cc.o" "gcc" "src/CMakeFiles/veritas_core.dir/core/sequential_meu.cc.o.d"
  "/root/repo/src/core/session.cc" "src/CMakeFiles/veritas_core.dir/core/session.cc.o" "gcc" "src/CMakeFiles/veritas_core.dir/core/session.cc.o.d"
  "/root/repo/src/core/strategy.cc" "src/CMakeFiles/veritas_core.dir/core/strategy.cc.o" "gcc" "src/CMakeFiles/veritas_core.dir/core/strategy.cc.o.d"
  "/root/repo/src/core/strategy_factory.cc" "src/CMakeFiles/veritas_core.dir/core/strategy_factory.cc.o" "gcc" "src/CMakeFiles/veritas_core.dir/core/strategy_factory.cc.o.d"
  "/root/repo/src/core/us.cc" "src/CMakeFiles/veritas_core.dir/core/us.cc.o" "gcc" "src/CMakeFiles/veritas_core.dir/core/us.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/veritas_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veritas_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veritas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
