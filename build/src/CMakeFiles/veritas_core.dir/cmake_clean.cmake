file(REMOVE_RECURSE
  "CMakeFiles/veritas_core.dir/core/approx_meu.cc.o"
  "CMakeFiles/veritas_core.dir/core/approx_meu.cc.o.d"
  "CMakeFiles/veritas_core.dir/core/gub.cc.o"
  "CMakeFiles/veritas_core.dir/core/gub.cc.o.d"
  "CMakeFiles/veritas_core.dir/core/hybrid.cc.o"
  "CMakeFiles/veritas_core.dir/core/hybrid.cc.o.d"
  "CMakeFiles/veritas_core.dir/core/interactive.cc.o"
  "CMakeFiles/veritas_core.dir/core/interactive.cc.o.d"
  "CMakeFiles/veritas_core.dir/core/metrics.cc.o"
  "CMakeFiles/veritas_core.dir/core/metrics.cc.o.d"
  "CMakeFiles/veritas_core.dir/core/meu.cc.o"
  "CMakeFiles/veritas_core.dir/core/meu.cc.o.d"
  "CMakeFiles/veritas_core.dir/core/oracle.cc.o"
  "CMakeFiles/veritas_core.dir/core/oracle.cc.o.d"
  "CMakeFiles/veritas_core.dir/core/qbc.cc.o"
  "CMakeFiles/veritas_core.dir/core/qbc.cc.o.d"
  "CMakeFiles/veritas_core.dir/core/random_strategy.cc.o"
  "CMakeFiles/veritas_core.dir/core/random_strategy.cc.o.d"
  "CMakeFiles/veritas_core.dir/core/sequential_meu.cc.o"
  "CMakeFiles/veritas_core.dir/core/sequential_meu.cc.o.d"
  "CMakeFiles/veritas_core.dir/core/session.cc.o"
  "CMakeFiles/veritas_core.dir/core/session.cc.o.d"
  "CMakeFiles/veritas_core.dir/core/strategy.cc.o"
  "CMakeFiles/veritas_core.dir/core/strategy.cc.o.d"
  "CMakeFiles/veritas_core.dir/core/strategy_factory.cc.o"
  "CMakeFiles/veritas_core.dir/core/strategy_factory.cc.o.d"
  "CMakeFiles/veritas_core.dir/core/us.cc.o"
  "CMakeFiles/veritas_core.dir/core/us.cc.o.d"
  "libveritas_core.a"
  "libveritas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veritas_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
