# Empty compiler generated dependencies file for veritas_core.
# This may be replaced when dependencies are built.
