file(REMOVE_RECURSE
  "libveritas_core.a"
)
