file(REMOVE_RECURSE
  "libveritas_model.a"
)
