file(REMOVE_RECURSE
  "CMakeFiles/veritas_model.dir/model/database.cc.o"
  "CMakeFiles/veritas_model.dir/model/database.cc.o.d"
  "CMakeFiles/veritas_model.dir/model/database_builder.cc.o"
  "CMakeFiles/veritas_model.dir/model/database_builder.cc.o.d"
  "CMakeFiles/veritas_model.dir/model/ground_truth.cc.o"
  "CMakeFiles/veritas_model.dir/model/ground_truth.cc.o.d"
  "CMakeFiles/veritas_model.dir/model/item_graph.cc.o"
  "CMakeFiles/veritas_model.dir/model/item_graph.cc.o.d"
  "libveritas_model.a"
  "libveritas_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veritas_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
