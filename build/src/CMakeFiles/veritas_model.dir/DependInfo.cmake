
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/database.cc" "src/CMakeFiles/veritas_model.dir/model/database.cc.o" "gcc" "src/CMakeFiles/veritas_model.dir/model/database.cc.o.d"
  "/root/repo/src/model/database_builder.cc" "src/CMakeFiles/veritas_model.dir/model/database_builder.cc.o" "gcc" "src/CMakeFiles/veritas_model.dir/model/database_builder.cc.o.d"
  "/root/repo/src/model/ground_truth.cc" "src/CMakeFiles/veritas_model.dir/model/ground_truth.cc.o" "gcc" "src/CMakeFiles/veritas_model.dir/model/ground_truth.cc.o.d"
  "/root/repo/src/model/item_graph.cc" "src/CMakeFiles/veritas_model.dir/model/item_graph.cc.o" "gcc" "src/CMakeFiles/veritas_model.dir/model/item_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/veritas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
