# Empty dependencies file for veritas_model.
# This may be replaced when dependencies are built.
