# Empty compiler generated dependencies file for veritas_exp.
# This may be replaced when dependencies are built.
