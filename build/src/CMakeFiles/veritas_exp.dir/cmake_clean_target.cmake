file(REMOVE_RECURSE
  "libveritas_exp.a"
)
