file(REMOVE_RECURSE
  "CMakeFiles/veritas_exp.dir/exp/export.cc.o"
  "CMakeFiles/veritas_exp.dir/exp/export.cc.o.d"
  "CMakeFiles/veritas_exp.dir/exp/harness.cc.o"
  "CMakeFiles/veritas_exp.dir/exp/harness.cc.o.d"
  "CMakeFiles/veritas_exp.dir/exp/report.cc.o"
  "CMakeFiles/veritas_exp.dir/exp/report.cc.o.d"
  "CMakeFiles/veritas_exp.dir/exp/scale.cc.o"
  "CMakeFiles/veritas_exp.dir/exp/scale.cc.o.d"
  "libveritas_exp.a"
  "libveritas_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veritas_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
