file(REMOVE_RECURSE
  "../bench/fig11_batch_size"
  "../bench/fig11_batch_size.pdb"
  "CMakeFiles/fig11_batch_size.dir/fig11_batch_size.cc.o"
  "CMakeFiles/fig11_batch_size.dir/fig11_batch_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_batch_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
