# Empty dependencies file for fig11_batch_size.
# This may be replaced when dependencies are built.
