file(REMOVE_RECURSE
  "../bench/micro_fusion"
  "../bench/micro_fusion.pdb"
  "CMakeFiles/micro_fusion.dir/micro_fusion.cc.o"
  "CMakeFiles/micro_fusion.dir/micro_fusion.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
