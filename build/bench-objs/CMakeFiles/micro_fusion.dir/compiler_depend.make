# Empty compiler generated dependencies file for micro_fusion.
# This may be replaced when dependencies are built.
