# Empty dependencies file for fig9_metric_correlation.
# This may be replaced when dependencies are built.
