file(REMOVE_RECURSE
  "../bench/fig9_metric_correlation"
  "../bench/fig9_metric_correlation.pdb"
  "CMakeFiles/fig9_metric_correlation.dir/fig9_metric_correlation.cc.o"
  "CMakeFiles/fig9_metric_correlation.dir/fig9_metric_correlation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_metric_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
