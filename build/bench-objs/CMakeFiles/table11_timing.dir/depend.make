# Empty dependencies file for table11_timing.
# This may be replaced when dependencies are built.
