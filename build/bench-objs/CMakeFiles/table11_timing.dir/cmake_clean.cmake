file(REMOVE_RECURSE
  "../bench/table11_timing"
  "../bench/table11_timing.pdb"
  "CMakeFiles/table11_timing.dir/table11_timing.cc.o"
  "CMakeFiles/table11_timing.dir/table11_timing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
