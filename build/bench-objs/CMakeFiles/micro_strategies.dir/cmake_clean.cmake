file(REMOVE_RECURSE
  "../bench/micro_strategies"
  "../bench/micro_strategies.pdb"
  "CMakeFiles/micro_strategies.dir/micro_strategies.cc.o"
  "CMakeFiles/micro_strategies.dir/micro_strategies.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
