file(REMOVE_RECURSE
  "../bench/fig7_incorrect_feedback"
  "../bench/fig7_incorrect_feedback.pdb"
  "CMakeFiles/fig7_incorrect_feedback.dir/fig7_incorrect_feedback.cc.o"
  "CMakeFiles/fig7_incorrect_feedback.dir/fig7_incorrect_feedback.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_incorrect_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
