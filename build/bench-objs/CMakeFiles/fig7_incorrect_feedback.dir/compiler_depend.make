# Empty compiler generated dependencies file for fig7_incorrect_feedback.
# This may be replaced when dependencies are built.
