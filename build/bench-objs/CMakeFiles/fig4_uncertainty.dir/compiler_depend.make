# Empty compiler generated dependencies file for fig4_uncertainty.
# This may be replaced when dependencies are built.
