file(REMOVE_RECURSE
  "../bench/fig4_uncertainty"
  "../bench/fig4_uncertainty.pdb"
  "CMakeFiles/fig4_uncertainty.dir/fig4_uncertainty.cc.o"
  "CMakeFiles/fig4_uncertainty.dir/fig4_uncertainty.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_uncertainty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
