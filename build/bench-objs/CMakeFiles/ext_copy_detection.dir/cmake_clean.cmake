file(REMOVE_RECURSE
  "../bench/ext_copy_detection"
  "../bench/ext_copy_detection.pdb"
  "CMakeFiles/ext_copy_detection.dir/ext_copy_detection.cc.o"
  "CMakeFiles/ext_copy_detection.dir/ext_copy_detection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_copy_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
