# Empty compiler generated dependencies file for ext_copy_detection.
# This may be replaced when dependencies are built.
