file(REMOVE_RECURSE
  "../bench/table12_hybrid_timing"
  "../bench/table12_hybrid_timing.pdb"
  "CMakeFiles/table12_hybrid_timing.dir/table12_hybrid_timing.cc.o"
  "CMakeFiles/table12_hybrid_timing.dir/table12_hybrid_timing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table12_hybrid_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
