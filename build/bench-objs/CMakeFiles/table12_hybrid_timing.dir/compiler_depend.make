# Empty compiler generated dependencies file for table12_hybrid_timing.
# This may be replaced when dependencies are built.
