# Empty dependencies file for ablation_warm_start.
# This may be replaced when dependencies are built.
