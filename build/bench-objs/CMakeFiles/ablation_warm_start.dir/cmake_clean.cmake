file(REMOVE_RECURSE
  "../bench/ablation_warm_start"
  "../bench/ablation_warm_start.pdb"
  "CMakeFiles/ablation_warm_start.dir/ablation_warm_start.cc.o"
  "CMakeFiles/ablation_warm_start.dir/ablation_warm_start.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_warm_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
