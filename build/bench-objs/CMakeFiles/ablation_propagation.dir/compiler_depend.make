# Empty compiler generated dependencies file for ablation_propagation.
# This may be replaced when dependencies are built.
