file(REMOVE_RECURSE
  "../bench/ablation_propagation"
  "../bench/ablation_propagation.pdb"
  "CMakeFiles/ablation_propagation.dir/ablation_propagation.cc.o"
  "CMakeFiles/ablation_propagation.dir/ablation_propagation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
