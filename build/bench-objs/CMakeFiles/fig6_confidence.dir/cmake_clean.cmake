file(REMOVE_RECURSE
  "../bench/fig6_confidence"
  "../bench/fig6_confidence.pdb"
  "CMakeFiles/fig6_confidence.dir/fig6_confidence.cc.o"
  "CMakeFiles/fig6_confidence.dir/fig6_confidence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
