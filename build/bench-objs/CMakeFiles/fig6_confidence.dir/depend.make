# Empty dependencies file for fig6_confidence.
# This may be replaced when dependencies are built.
