file(REMOVE_RECURSE
  "../bench/ablation_fusion_models"
  "../bench/ablation_fusion_models.pdb"
  "CMakeFiles/ablation_fusion_models.dir/ablation_fusion_models.cc.o"
  "CMakeFiles/ablation_fusion_models.dir/ablation_fusion_models.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fusion_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
