# Empty dependencies file for ablation_fusion_models.
# This may be replaced when dependencies are built.
