# Empty dependencies file for table10_datasets.
# This may be replaced when dependencies are built.
