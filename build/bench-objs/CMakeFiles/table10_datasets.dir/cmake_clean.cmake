file(REMOVE_RECURSE
  "../bench/table10_datasets"
  "../bench/table10_datasets.pdb"
  "CMakeFiles/table10_datasets.dir/table10_datasets.cc.o"
  "CMakeFiles/table10_datasets.dir/table10_datasets.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
