file(REMOVE_RECURSE
  "../bench/ext_sequential_meu"
  "../bench/ext_sequential_meu.pdb"
  "CMakeFiles/ext_sequential_meu.dir/ext_sequential_meu.cc.o"
  "CMakeFiles/ext_sequential_meu.dir/ext_sequential_meu.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_sequential_meu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
