# Empty dependencies file for ext_sequential_meu.
# This may be replaced when dependencies are built.
