# Empty compiler generated dependencies file for fig3_effectiveness.
# This may be replaced when dependencies are built.
