file(REMOVE_RECURSE
  "../bench/fig3_effectiveness"
  "../bench/fig3_effectiveness.pdb"
  "CMakeFiles/fig3_effectiveness.dir/fig3_effectiveness.cc.o"
  "CMakeFiles/fig3_effectiveness.dir/fig3_effectiveness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
