# Empty compiler generated dependencies file for ext_crowd_consolidation.
# This may be replaced when dependencies are built.
