file(REMOVE_RECURSE
  "../bench/ext_crowd_consolidation"
  "../bench/ext_crowd_consolidation.pdb"
  "CMakeFiles/ext_crowd_consolidation.dir/ext_crowd_consolidation.cc.o"
  "CMakeFiles/ext_crowd_consolidation.dir/ext_crowd_consolidation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_crowd_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
