
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_longtail.cc" "bench-objs/CMakeFiles/fig8_longtail.dir/fig8_longtail.cc.o" "gcc" "bench-objs/CMakeFiles/fig8_longtail.dir/fig8_longtail.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/veritas_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veritas_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veritas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veritas_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veritas_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veritas_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veritas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
