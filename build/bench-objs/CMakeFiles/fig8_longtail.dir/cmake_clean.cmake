file(REMOVE_RECURSE
  "../bench/fig8_longtail"
  "../bench/fig8_longtail.pdb"
  "CMakeFiles/fig8_longtail.dir/fig8_longtail.cc.o"
  "CMakeFiles/fig8_longtail.dir/fig8_longtail.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_longtail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
