# Empty compiler generated dependencies file for fig8_longtail.
# This may be replaced when dependencies are built.
