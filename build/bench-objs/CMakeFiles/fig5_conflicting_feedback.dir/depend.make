# Empty dependencies file for fig5_conflicting_feedback.
# This may be replaced when dependencies are built.
