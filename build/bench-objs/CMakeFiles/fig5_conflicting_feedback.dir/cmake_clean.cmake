file(REMOVE_RECURSE
  "../bench/fig5_conflicting_feedback"
  "../bench/fig5_conflicting_feedback.pdb"
  "CMakeFiles/fig5_conflicting_feedback.dir/fig5_conflicting_feedback.cc.o"
  "CMakeFiles/fig5_conflicting_feedback.dir/fig5_conflicting_feedback.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_conflicting_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
