# Empty compiler generated dependencies file for fig10_hybrid_k.
# This may be replaced when dependencies are built.
