file(REMOVE_RECURSE
  "../bench/fig10_hybrid_k"
  "../bench/fig10_hybrid_k.pdb"
  "CMakeFiles/fig10_hybrid_k.dir/fig10_hybrid_k.cc.o"
  "CMakeFiles/fig10_hybrid_k.dir/fig10_hybrid_k.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_hybrid_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
