# Empty dependencies file for ablation_gub_mode.
# This may be replaced when dependencies are built.
