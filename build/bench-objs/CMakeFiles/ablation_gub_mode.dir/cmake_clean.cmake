file(REMOVE_RECURSE
  "../bench/ablation_gub_mode"
  "../bench/ablation_gub_mode.pdb"
  "CMakeFiles/ablation_gub_mode.dir/ablation_gub_mode.cc.o"
  "CMakeFiles/ablation_gub_mode.dir/ablation_gub_mode.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gub_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
