
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_approx_meu_test.cc" "tests/CMakeFiles/veritas_tests.dir/core_approx_meu_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/core_approx_meu_test.cc.o.d"
  "/root/repo/tests/core_gub_test.cc" "tests/CMakeFiles/veritas_tests.dir/core_gub_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/core_gub_test.cc.o.d"
  "/root/repo/tests/core_hybrid_test.cc" "tests/CMakeFiles/veritas_tests.dir/core_hybrid_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/core_hybrid_test.cc.o.d"
  "/root/repo/tests/core_interactive_test.cc" "tests/CMakeFiles/veritas_tests.dir/core_interactive_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/core_interactive_test.cc.o.d"
  "/root/repo/tests/core_metrics_test.cc" "tests/CMakeFiles/veritas_tests.dir/core_metrics_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/core_metrics_test.cc.o.d"
  "/root/repo/tests/core_meu_test.cc" "tests/CMakeFiles/veritas_tests.dir/core_meu_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/core_meu_test.cc.o.d"
  "/root/repo/tests/core_oracle_test.cc" "tests/CMakeFiles/veritas_tests.dir/core_oracle_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/core_oracle_test.cc.o.d"
  "/root/repo/tests/core_qbc_us_test.cc" "tests/CMakeFiles/veritas_tests.dir/core_qbc_us_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/core_qbc_us_test.cc.o.d"
  "/root/repo/tests/core_sequential_meu_test.cc" "tests/CMakeFiles/veritas_tests.dir/core_sequential_meu_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/core_sequential_meu_test.cc.o.d"
  "/root/repo/tests/core_session_test.cc" "tests/CMakeFiles/veritas_tests.dir/core_session_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/core_session_test.cc.o.d"
  "/root/repo/tests/core_strategy_test.cc" "tests/CMakeFiles/veritas_tests.dir/core_strategy_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/core_strategy_test.cc.o.d"
  "/root/repo/tests/crowd_test.cc" "tests/CMakeFiles/veritas_tests.dir/crowd_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/crowd_test.cc.o.d"
  "/root/repo/tests/data_canonicalize_test.cc" "tests/CMakeFiles/veritas_tests.dir/data_canonicalize_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/data_canonicalize_test.cc.o.d"
  "/root/repo/tests/data_loader_test.cc" "tests/CMakeFiles/veritas_tests.dir/data_loader_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/data_loader_test.cc.o.d"
  "/root/repo/tests/data_stats_test.cc" "tests/CMakeFiles/veritas_tests.dir/data_stats_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/data_stats_test.cc.o.d"
  "/root/repo/tests/data_synthetic_test.cc" "tests/CMakeFiles/veritas_tests.dir/data_synthetic_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/data_synthetic_test.cc.o.d"
  "/root/repo/tests/edge_cases_test.cc" "tests/CMakeFiles/veritas_tests.dir/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/edge_cases_test.cc.o.d"
  "/root/repo/tests/exp_export_test.cc" "tests/CMakeFiles/veritas_tests.dir/exp_export_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/exp_export_test.cc.o.d"
  "/root/repo/tests/exp_harness_test.cc" "tests/CMakeFiles/veritas_tests.dir/exp_harness_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/exp_harness_test.cc.o.d"
  "/root/repo/tests/fusion_accu_copy_test.cc" "tests/CMakeFiles/veritas_tests.dir/fusion_accu_copy_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/fusion_accu_copy_test.cc.o.d"
  "/root/repo/tests/fusion_accu_golden_test.cc" "tests/CMakeFiles/veritas_tests.dir/fusion_accu_golden_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/fusion_accu_golden_test.cc.o.d"
  "/root/repo/tests/fusion_accu_test.cc" "tests/CMakeFiles/veritas_tests.dir/fusion_accu_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/fusion_accu_test.cc.o.d"
  "/root/repo/tests/fusion_convergence_test.cc" "tests/CMakeFiles/veritas_tests.dir/fusion_convergence_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/fusion_convergence_test.cc.o.d"
  "/root/repo/tests/fusion_priors_test.cc" "tests/CMakeFiles/veritas_tests.dir/fusion_priors_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/fusion_priors_test.cc.o.d"
  "/root/repo/tests/fusion_result_test.cc" "tests/CMakeFiles/veritas_tests.dir/fusion_result_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/fusion_result_test.cc.o.d"
  "/root/repo/tests/fusion_variants_test.cc" "tests/CMakeFiles/veritas_tests.dir/fusion_variants_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/fusion_variants_test.cc.o.d"
  "/root/repo/tests/fusion_voting_test.cc" "tests/CMakeFiles/veritas_tests.dir/fusion_voting_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/fusion_voting_test.cc.o.d"
  "/root/repo/tests/integration_end_to_end_test.cc" "tests/CMakeFiles/veritas_tests.dir/integration_end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/integration_end_to_end_test.cc.o.d"
  "/root/repo/tests/integration_paper_example_test.cc" "tests/CMakeFiles/veritas_tests.dir/integration_paper_example_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/integration_paper_example_test.cc.o.d"
  "/root/repo/tests/model_database_test.cc" "tests/CMakeFiles/veritas_tests.dir/model_database_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/model_database_test.cc.o.d"
  "/root/repo/tests/model_ground_truth_test.cc" "tests/CMakeFiles/veritas_tests.dir/model_ground_truth_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/model_ground_truth_test.cc.o.d"
  "/root/repo/tests/model_item_graph_test.cc" "tests/CMakeFiles/veritas_tests.dir/model_item_graph_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/model_item_graph_test.cc.o.d"
  "/root/repo/tests/property_extensions_test.cc" "tests/CMakeFiles/veritas_tests.dir/property_extensions_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/property_extensions_test.cc.o.d"
  "/root/repo/tests/property_fusion_test.cc" "tests/CMakeFiles/veritas_tests.dir/property_fusion_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/property_fusion_test.cc.o.d"
  "/root/repo/tests/property_strategies_test.cc" "tests/CMakeFiles/veritas_tests.dir/property_strategies_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/property_strategies_test.cc.o.d"
  "/root/repo/tests/util_args_test.cc" "tests/CMakeFiles/veritas_tests.dir/util_args_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/util_args_test.cc.o.d"
  "/root/repo/tests/util_csv_test.cc" "tests/CMakeFiles/veritas_tests.dir/util_csv_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/util_csv_test.cc.o.d"
  "/root/repo/tests/util_math_test.cc" "tests/CMakeFiles/veritas_tests.dir/util_math_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/util_math_test.cc.o.d"
  "/root/repo/tests/util_rng_test.cc" "tests/CMakeFiles/veritas_tests.dir/util_rng_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/util_rng_test.cc.o.d"
  "/root/repo/tests/util_stats_test.cc" "tests/CMakeFiles/veritas_tests.dir/util_stats_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/util_stats_test.cc.o.d"
  "/root/repo/tests/util_status_test.cc" "tests/CMakeFiles/veritas_tests.dir/util_status_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/util_status_test.cc.o.d"
  "/root/repo/tests/util_strings_test.cc" "tests/CMakeFiles/veritas_tests.dir/util_strings_test.cc.o" "gcc" "tests/CMakeFiles/veritas_tests.dir/util_strings_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/veritas_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veritas_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veritas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veritas_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veritas_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veritas_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/veritas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
