# Empty compiler generated dependencies file for veritas_tests.
# This may be replaced when dependencies are built.
